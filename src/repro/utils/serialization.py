"""Serialization primitives: checkpoints, canonical JSON, atomic writes.

Model checkpointing maps parameter/buffer names to numpy arrays
(complex arrays included — photonic phases are real but intermediate
buffers may not be).  The format is a single ``.npz`` file plus a JSON
manifest of shapes/dtypes for validation on load.

Round-trips preserve the array dtype end to end: the manifest records
each array's dtype, the stored ``.npz`` entries are validated against
it on load, and :meth:`repro.nn.Module.load_state_dict` adopts the
stored dtype rather than casting into the destination parameter — so
an artifact built under the complex64 execution backend reloads as
complex64 and re-scores identically.

The design service (:mod:`repro.service`) builds on three more
primitives here:

* :func:`canonical_json_dumps` — a bijective, sorted-key, non-NaN JSON
  encoding, so equal payloads always produce equal bytes;
* :func:`json_digest` — a blake2b content address over that canonical
  encoding (job ids and artifact references);
* :func:`atomic_write_text` / :func:`atomic_write_bytes` — same-
  directory temp file + ``os.replace``, so concurrent readers of a
  persistent queue or cache directory never observe a torn write.
"""

from __future__ import annotations

import hashlib
import json
import os
from pathlib import Path
from typing import Union

import numpy as np

from ..nn.module import Module


# ----------------------------------------------------------------------
# Canonical JSON + content addressing + atomic writes
# ----------------------------------------------------------------------

def canonical_json_dumps(obj) -> str:
    """Deterministic JSON encoding: sorted keys, compact separators,
    no NaN/Infinity.

    Equal payloads (regardless of dict insertion order) always encode
    to the same bytes, which makes the encoding safe to hash for job
    ids and artifact references.  ``allow_nan=False`` rejects values
    that would not round-trip through standards-compliant parsers.
    """
    return json.dumps(
        obj, sort_keys=True, separators=(",", ":"), allow_nan=False
    )


def json_digest(obj) -> str:
    """Hex blake2b-128 content address of ``obj``'s canonical JSON."""
    enc = canonical_json_dumps(obj).encode("utf-8")
    return hashlib.blake2b(enc, digest_size=16).hexdigest()


def atomic_write_bytes(path: Union[str, Path], data: bytes) -> None:
    """Write ``data`` to ``path`` so readers see all of it or none.

    The bytes land in a uniquely named temp file in the *same*
    directory (``os.replace`` is only atomic within a filesystem),
    are fsync'd, and the temp file is renamed over the target.  A
    concurrent reader therefore observes either the previous complete
    file or the new complete file — never a prefix.  A crash mid-write
    leaves only a ``.tmp-*`` orphan, never a corrupt target.
    """
    path = Path(path)
    tmp = path.with_name(
        f".tmp-{path.name}-{os.getpid()}-{os.urandom(4).hex()}"
    )
    try:
        with open(tmp, "wb") as f:
            f.write(data)
            f.flush()
            os.fsync(f.fileno())
        os.replace(tmp, path)
    finally:
        if tmp.exists():  # replace failed; don't litter
            try:
                tmp.unlink()
            except OSError:
                pass


def atomic_write_text(path: Union[str, Path], text: str) -> None:
    """Atomic UTF-8 text write (see :func:`atomic_write_bytes`)."""
    atomic_write_bytes(path, text.encode("utf-8"))


def save_checkpoint(model: Module, path: Union[str, Path]) -> None:
    """Serialize a model's state dict to ``path`` (.npz)."""
    path = Path(path)
    state = model.state_dict()
    manifest = {
        name: {"shape": list(arr.shape), "dtype": str(arr.dtype)}
        for name, arr in state.items()
    }
    np.savez(path, __manifest__=json.dumps(manifest), **state)


def load_checkpoint(model: Module, path: Union[str, Path], strict: bool = True) -> None:
    """Load a checkpoint into ``model``.

    With ``strict=True`` every model parameter must be present in the
    checkpoint with a matching shape, and every stored array must match
    the dtype its manifest entry records (guards against corrupted or
    hand-edited artifacts silently changing precision).
    """
    path = Path(path)
    with np.load(path, allow_pickle=False) as data:
        manifest = json.loads(str(data["__manifest__"]))
        state = {name: data[name] for name in data.files if name != "__manifest__"}
    if strict:
        own = dict(model.named_parameters())
        missing = [n for n in own if n not in state]
        if missing:
            raise KeyError(f"checkpoint missing parameters: {missing}")
        for name, p in own.items():
            want = tuple(manifest[name]["shape"])
            if tuple(p.shape) != want:
                raise ValueError(
                    f"shape mismatch for {name}: model {tuple(p.shape)} vs "
                    f"checkpoint {want}"
                )
        for name, arr in state.items():
            recorded = manifest.get(name, {}).get("dtype")
            if recorded is not None and str(arr.dtype) != recorded:
                raise ValueError(
                    f"dtype mismatch for {name}: stored {arr.dtype} vs "
                    f"manifest {recorded}"
                )
    model.load_state_dict(state)
