"""Shared utilities: RNG management, logging, serialization, plotting."""

from .ascii_plot import bar_chart, line_plot, sparkline
from .logging import TraceLogger
from .rng import get_rng, set_seed, spawn_rng, stable_hash, stable_seed
from .serialization import load_checkpoint, save_checkpoint

__all__ = [
    "TraceLogger",
    "bar_chart",
    "line_plot",
    "sparkline",
    "get_rng",
    "load_checkpoint",
    "save_checkpoint",
    "set_seed",
    "spawn_rng",
    "stable_hash",
    "stable_seed",
]
