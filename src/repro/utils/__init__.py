"""Shared utilities: RNG management, logging, serialization, plotting."""

from .ascii_plot import bar_chart, line_plot, sparkline
from .logging import TraceLogger
from .rng import get_rng, set_seed, spawn_rng, stable_hash, stable_seed
from .serialization import (
    atomic_write_bytes,
    atomic_write_text,
    canonical_json_dumps,
    json_digest,
    load_checkpoint,
    save_checkpoint,
)

__all__ = [
    "TraceLogger",
    "atomic_write_bytes",
    "atomic_write_text",
    "bar_chart",
    "canonical_json_dumps",
    "json_digest",
    "line_plot",
    "sparkline",
    "get_rng",
    "load_checkpoint",
    "save_checkpoint",
    "set_seed",
    "spawn_rng",
    "stable_hash",
    "stable_seed",
]
