"""Lightweight experiment trace logging.

The search flow records per-step scalar traces (loss, permutation
error, expected footprint...).  :class:`TraceLogger` accumulates named
scalar series and serializes them to CSV or JSON so experiments can be
post-processed without re-running.

Saves publish atomically (rendered in memory, then
:func:`repro.utils.serialization.atomic_write_text`): a crash between
the first byte and the rename leaves the previous complete trace on
disk, never a torn CSV that parses as a truncated run.
"""

from __future__ import annotations

import csv
import io
import json
from pathlib import Path
from typing import Dict, List, Union


class TraceLogger:
    """Accumulate named scalar series of equal or unequal lengths."""

    def __init__(self):
        self._series: Dict[str, List[float]] = {}

    def log(self, **values: float) -> None:
        """Append one value per named series."""
        for name, value in values.items():
            self._series.setdefault(name, []).append(float(value))

    def series(self, name: str) -> List[float]:
        return list(self._series.get(name, []))

    @property
    def names(self) -> List[str]:
        return sorted(self._series)

    def __len__(self) -> int:
        return max((len(s) for s in self._series.values()), default=0)

    # -- serialization ---------------------------------------------------
    def to_json(self) -> str:
        return json.dumps(self._series, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "TraceLogger":
        logger = cls()
        logger._series = {k: [float(x) for x in v] for k, v in json.loads(text).items()}
        return logger

    def save(self, path: Union[str, Path]) -> None:
        from .serialization import atomic_write_text

        path = Path(path)
        if path.suffix == ".csv":
            atomic_write_text(path, self._render_csv())
        else:
            atomic_write_text(path, self.to_json())

    def _render_csv(self) -> str:
        names = self.names
        rows = max((len(self._series[n]) for n in names), default=0)
        buf = io.StringIO()
        writer = csv.writer(buf)
        writer.writerow(["step"] + names)
        for i in range(rows):
            writer.writerow(
                [i]
                + [
                    self._series[n][i] if i < len(self._series[n]) else ""
                    for n in names
                ]
            )
        return buf.getvalue()

    @classmethod
    def load(cls, path: Union[str, Path]) -> "TraceLogger":
        path = Path(path)
        if path.suffix == ".csv":
            logger = cls()
            with open(path, newline="") as f:
                reader = csv.reader(f)
                header = next(reader)[1:]
                for row in reader:
                    for name, cell in zip(header, row[1:]):
                        if cell != "":
                            logger._series.setdefault(name, []).append(float(cell))
            return logger
        return cls.from_json(path.read_text())
