"""Photonic tensor-core meshes: trainable factories and analysis."""

from .reference_topologies import (
    butterfly_topology,
    mzi_topology,
    stride_interleave_perm,
)
from .clements import (
    ClementsDecomposition,
    clements_decompose,
    factor_two_by_two,
    mesh_depth,
    schedule_layers,
    to_output_phase_form,
)
from .butterfly import (
    butterfly_stage_matrix,
    butterfly_transfer_np,
    dft_matrix,
    n_free_parameters,
)
from .mzi import MZIOp, max_mzi_count, mzi_2x2, reck_decompose, reconstruct_from_ops
from .cache import (
    UnitaryBuildCache,
    set_unitary_cache_dir,
    set_unitary_cache_enabled,
    unitary_cache_dir,
    unitary_cache_enabled,
)
from .population import (
    PopulationFitResult,
    TopologyPopulation,
    fit_unitary_population,
)
from .unitary import (
    DEFAULT_BACKEND,
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    UnitaryFactory,
    batched_scatter,
)

__all__ = [
    "ButterflyFactory",
    "DEFAULT_BACKEND",
    "PopulationFitResult",
    "TopologyPopulation",
    "UnitaryBuildCache",
    "fit_unitary_population",
    "set_unitary_cache_dir",
    "set_unitary_cache_enabled",
    "unitary_cache_dir",
    "unitary_cache_enabled",
    "ClementsDecomposition",
    "clements_decompose",
    "factor_two_by_two",
    "mesh_depth",
    "schedule_layers",
    "to_output_phase_form",
    "FixedTopologyFactory",
    "MZIMeshFactory",
    "MZIOp",
    "UnitaryFactory",
    "butterfly_topology",
    "mzi_topology",
    "stride_interleave_perm",
    "batched_scatter",
    "butterfly_stage_matrix",
    "butterfly_transfer_np",
    "dft_matrix",
    "max_mzi_count",
    "mzi_2x2",
    "n_free_parameters",
    "reck_decompose",
    "reconstruct_from_ops",
]
