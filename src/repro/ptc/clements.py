"""Clements rectangular decomposition of unitaries into MZI meshes.

The MZI-ONN baseline uses a *rectangular* (Clements et al., Optica
2016 — the paper's reference [3]) arrangement of K(K-1)/2 MZIs.  This
module provides the constructive decomposition of an arbitrary K x K
unitary into that mesh, in the exact MZI parametrization used by
:class:`repro.ptc.unitary.MZIMeshFactory` and
:func:`repro.ptc.mzi.mzi_2x2`:

    M(theta, phi) = 1/2 [[(a-1) e^{-j phi},   j (a+1)      ],
                         [j (a+1) e^{-j phi}, (1 - a)      ]],   a = e^{-j theta}.

Compared with the Reck triangle (:func:`repro.ptc.mzi.reck_decompose`),
the rectangle halves the optical depth (K instead of 2K-3 MZI
columns), which is why it is the standard choice for the MZI-ONN
baseline: optical loss and phase-noise accumulation scale with depth.

Three entry points:

* :func:`clements_decompose` — the two-sided nulling sweep.  Returns a
  :class:`ClementsDecomposition` holding the left ops, right ops, and
  residual diagonal, with ``reconstruct()`` inverting it exactly.
* :func:`to_output_phase_form` — commutes the residual diagonal
  through the left operations so the whole unitary becomes a single
  *output phase screen* followed by a pure MZI product:
  ``U = diag(d) @ T_1 @ T_2 @ ... @ T_n``.  This is the form that maps
  one-to-one onto a physical rectangular mesh with a trailing PS
  column.
* :func:`schedule_layers` — greedy packing of MZI ops into mesh
  columns; for a Clements decomposition the depth is at most K.
"""

from __future__ import annotations

import cmath
import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from .mzi import MZIOp, _embed, _null_theta_phi, mzi_2x2

__all__ = [
    "ClementsDecomposition",
    "clements_decompose",
    "factor_two_by_two",
    "mesh_depth",
    "schedule_layers",
    "to_output_phase_form",
]

_ATOL = 1e-8


@dataclass
class ClementsDecomposition:
    """Result of the two-sided Clements nulling sweep.

    The sweep establishes ``L_n ... L_1 @ U @ R_1^H ... R_m^H = diag``
    where each ``L`` is a left (row-mixing) MZI and each ``R^H`` is the
    inverse of a right (column-mixing) MZI, so

        ``U = L_1^H ... L_n^H @ diag @ R_m ... R_1``.

    ``left_ops`` stores the L's in application order (L_1 first);
    ``right_ops`` stores the R's in the order they appear in the
    reconstruction product above (R_m first).
    """

    k: int
    left_ops: List[MZIOp]
    right_ops: List[MZIOp]
    diag: np.ndarray

    @property
    def n_ops(self) -> int:
        return len(self.left_ops) + len(self.right_ops)

    def reconstruct(self) -> np.ndarray:
        """Rebuild the original unitary from the factorization."""
        u = np.diag(self.diag).astype(complex)
        # The sweep applies L_1 first, so diag = L_n .. L_1 U (..) and the
        # innermost inverse adjacent to diag is L_n^H: replay newest-first.
        for op in reversed(self.left_ops):
            u = _embed(op, self.k).conj().T @ u
        for op in self.right_ops:
            u = u @ _embed(op, self.k)
        return u


def _null_right(u: complex, v: complex) -> Tuple[float, float]:
    """Phases (theta, phi) such that right-multiplying by
    ``M(theta, phi)^H`` on columns (c, c+1) annihilates the ``c``
    entry of the row ``[u, v]`` (u = row[c], v = row[c+1]).

    The condition is ``u * conj(m00) + v * conj(m01) = 0`` which
    reduces to ``tan(theta/2) e^{j phi} = v / u``.
    """
    if abs(u) < 1e-300:
        # Row already has a zero at c when v == 0; otherwise the full
        # cross state (theta = pi) swaps the entries: m01 = 0 kills
        # the contribution of v, and u = 0 kills the rest.
        return math.pi, 0.0
    ratio = v / u
    theta = 2.0 * math.atan2(abs(ratio), 1.0)
    phi = float(np.angle(ratio)) if abs(ratio) > 0 else 0.0
    return float(theta), phi


def clements_decompose(unitary: np.ndarray) -> ClementsDecomposition:
    """Decompose a unitary with the rectangular two-sided sweep.

    Diagonals of the matrix are eliminated alternately from the right
    (even diagonals, column mixing) and from the left (odd diagonals,
    row mixing), which is what folds the triangle of Reck into a
    rectangle of depth <= K.

    Raises ``ValueError`` if the input is not square or not unitary.
    """
    u = np.array(unitary, dtype=complex)
    k = u.shape[0]
    if u.ndim != 2 or u.shape != (k, k):
        raise ValueError("input must be a square matrix")
    if not np.allclose(u.conj().T @ u, np.eye(k), atol=_ATOL):
        raise ValueError("input must be unitary")

    left: List[MZIOp] = []
    right: List[MZIOp] = []
    for d in range(k - 1):
        for j in range(d + 1):
            if d % 2 == 0:
                # Null u[k-1-j, d-j] with a column op on (c, c+1).
                row, col = k - 1 - j, d - j
                if abs(u[row, col]) < 1e-12:
                    continue
                theta, phi = _null_right(u[row, col], u[row, col + 1])
                op = MZIOp(p=col, theta=theta, phi=phi)
                u = u @ _embed(op, k).conj().T
                right.append(op)
            else:
                # Null u[k-1-d+j, j] with a row op on (p, p+1).
                row, col = k - 1 - d + j, j
                if abs(u[row, col]) < 1e-12:
                    continue
                p = row - 1
                theta, phi = _null_theta_phi(u[p, col], u[row, col])
                op = MZIOp(p=p, theta=theta, phi=phi)
                u = _embed(op, k) @ u
                left.append(op)
            assert abs(u[row, col]) < _ATOL, (row, col, abs(u[row, col]))

    diag = np.diag(u).copy()
    off = u - np.diag(diag)
    if not np.allclose(off, 0.0, atol=1e-6):
        raise AssertionError("sweep did not reduce the unitary to a diagonal")
    # Reconstruction order: U = L_1^H .. L_n^H diag R_m .. R_1, so the
    # right ops must be replayed newest-first.
    return ClementsDecomposition(k=k, left_ops=left, right_ops=right[::-1], diag=diag)


def factor_two_by_two(a: np.ndarray) -> Tuple[np.ndarray, float, float]:
    """Factor a 2x2 unitary as ``diag(d) @ M(theta, phi)``.

    Returns ``(d, theta, phi)`` with ``|d| = 1`` elementwise.  Used to
    push residual phase screens through MZIs (Clements' main lemma):
    any 2x2 unitary admits this form because ``diag + M`` covers all
    four real degrees of freedom of U(2).
    """
    a = np.asarray(a, dtype=complex)
    if a.shape != (2, 2):
        raise ValueError("expected a 2x2 matrix")
    if not np.allclose(a.conj().T @ a, np.eye(2), atol=_ATOL):
        raise ValueError("expected a unitary matrix")
    # |m00| = |sin(theta/2)|, |m01| = |cos(theta/2)| fixes theta.
    theta = 2.0 * math.atan2(abs(a[0, 0]), abs(a[0, 1]))
    m = mzi_2x2(theta, 0.0)
    # Output phases from whichever entries are nonzero; phi from the
    # ratio of the first column to its M counterpart.
    if abs(m[0, 1]) > 1e-12:
        d0 = cmath.phase(a[0, 1]) - cmath.phase(m[0, 1])
    else:
        d0 = cmath.phase(a[0, 0]) - cmath.phase(m[0, 0])
    if abs(m[1, 1]) > 1e-12:
        d1 = cmath.phase(a[1, 1]) - cmath.phase(m[1, 1])
    else:
        d1 = cmath.phase(a[1, 0]) - cmath.phase(m[1, 0])
    d = np.exp(1j * np.array([d0, d1]))
    # phi is the remaining column-0 phase common to both rows.
    if abs(m[0, 0]) > 1e-12:
        phi = -(cmath.phase(a[0, 0]) - d0 - cmath.phase(m[0, 0]))
    elif abs(m[1, 0]) > 1e-12:
        phi = -(cmath.phase(a[1, 0]) - d1 - cmath.phase(m[1, 0]))
    else:
        phi = 0.0
    # Normalize phi into (-pi, pi] for reproducibility.
    phi = math.remainder(phi, 2.0 * math.pi)
    check = np.diag(d) @ mzi_2x2(theta, phi)
    if not np.allclose(check, a, atol=1e-6):
        raise AssertionError("2x2 refactorization failed")
    return d, float(theta), float(phi)


def to_output_phase_form(
    dec: ClementsDecomposition,
) -> Tuple[np.ndarray, List[MZIOp]]:
    """Rewrite the decomposition as ``U = diag(d) @ T_1 @ ... @ T_n``.

    Each left inverse ``L_i^H`` is pushed through the running diagonal
    using :func:`factor_two_by_two`; the right ops are already on the
    correct side.  The result is the physical form of a rectangular
    mesh: all MZIs first (in matrix-product order: ``T_n`` is applied
    to the input first), then a single column of output phase
    shifters.
    """
    k = dec.k
    d = dec.diag.copy()
    ops: List[MZIOp] = []
    # U = L_1^H .. L_n^H @ diag @ R_m .. R_1; push from L_n^H outwards.
    for op in reversed(dec.left_ops):
        block = _embed(op, k).conj().T[op.p : op.p + 2, op.p : op.p + 2]
        local = block @ np.diag(d[op.p : op.p + 2])
        d2, theta, phi = factor_two_by_two(local)
        d[op.p : op.p + 2] = d2
        ops.insert(0, MZIOp(p=op.p, theta=theta, phi=phi))
    ops.extend(dec.right_ops)
    return d, ops


def reconstruct_output_phase_form(
    k: int, diag: np.ndarray, ops: Sequence[MZIOp]
) -> np.ndarray:
    """Rebuild ``U = diag @ T_1 @ ... @ T_n`` (inverse of
    :func:`to_output_phase_form`)."""
    u = np.diag(diag).astype(complex)
    for op in ops:
        u = u @ _embed(op, k)
    return u


def schedule_layers(ops: Sequence[MZIOp], k: int) -> List[List[MZIOp]]:
    """Greedy ASAP packing of MZI ops into mesh columns.

    Ops are placed in the order they act on the *input* (i.e. reversed
    matrix-product order).  An op lands in the earliest column after
    every previously-placed op that shares one of its two waveguides.
    For a Clements rectangle the resulting depth is <= K; for a Reck
    triangle it is up to 2K - 3.
    """
    ready = np.zeros(k, dtype=int)  # first free column per waveguide
    layers: List[List[MZIOp]] = []
    for op in reversed(list(ops)):
        col = int(max(ready[op.p], ready[op.p + 1]))
        while len(layers) <= col:
            layers.append([])
        layers[col].append(op)
        ready[op.p] = ready[op.p + 1] = col + 1
    return layers


def mesh_depth(ops: Sequence[MZIOp], k: int) -> int:
    """Number of MZI columns after ASAP scheduling."""
    return len(schedule_layers(ops, k))
