"""The manual baselines expressed as explicit block topologies.

The MZI-ONN and FFT-ONN baselines are normally handled analytically
(:func:`repro.photonics.footprint.mzi_onn_footprint` /
``butterfly_footprint``) and through their trainable factories.  For
physical-design analyses — netlist export, floorplanning, power and
latency estimation — it is useful to have them as concrete
:class:`~repro.core.topology.PTCTopology` objects with the exact
device counts of the paper's accounting.  That is what this module
builds:

* :func:`mzi_topology` — the rectangular MZI mesh as 2K blocks per
  unitary: each MZI column contributes an *internal* and an
  *external* phase-shifter block, both carrying the column's
  couplers.  Counts: #Blk = 4K, #PS = 4K^2, #DC = 2K(K-1), #CR = 0.
* :func:`butterfly_topology` — the FFT butterfly as log2(K) blocks
  per unitary; stage s couples stride-2^s pairs, realized by an
  interleaving crossing network before each non-adjacent stage.
  Counts: #Blk = 2 log2 K, #DC = K/2 per block, #CR matching the
  analytic butterfly crossing count.

Both reproduce the corresponding Table 1 footprints exactly (verified
in the test suite).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..core.topology import BlockSpec, PTCTopology

__all__ = ["butterfly_topology", "mzi_topology", "stride_interleave_perm"]


def mzi_topology(k: int, name: str = "mzi-onn") -> PTCTopology:
    """The rectangular (Clements) MZI mesh in block form.

    MZI column ``l`` holds ``(K - l % 2) // 2`` MZIs at offset
    ``l % 2``.  Each MZI is two couplers and two phase screens, so the
    column expands into two blocks that share the same coupler
    pattern.  No crossings anywhere — MZI meshes are planar.
    """
    if k < 2:
        raise ValueError(f"mesh size must be >= 2, got {k}")

    def one_mesh() -> List[BlockSpec]:
        blocks: List[BlockSpec] = []
        for layer in range(k):
            offset = layer % 2
            slots = (k - offset) // 2
            mask = np.ones(slots, dtype=bool)
            for _half in range(2):  # internal + external phase stage
                blocks.append(BlockSpec(coupler_mask=mask.copy(),
                                        offset=offset, perm=None))
        return blocks

    return PTCTopology(k=k, blocks_u=one_mesh(), blocks_v=one_mesh(),
                       name=name)


def stride_interleave_perm(k: int, stride: int) -> np.ndarray:
    """Permutation that makes stride-``stride`` pairs adjacent.

    Within each group of ``2 * stride`` waveguides, the two
    stride-halves are interleaved: ``[0, stride, 1, stride+1, ...]``.
    Its inversion count per group is ``stride * (stride - 1) / 2`` —
    the butterfly crossing formula.
    """
    if stride < 1 or k % (2 * stride) != 0:
        raise ValueError(f"stride {stride} incompatible with size {k}")
    perm: List[int] = []
    group = 2 * stride
    for base in range(0, k, group):
        for i in range(stride):
            perm.extend([base + i, base + i + stride])
    return np.asarray(perm, dtype=int)


def butterfly_topology(k: int, name: str = "fft-onn") -> PTCTopology:
    """The FFT butterfly mesh in block form.

    Stage ``s`` (s = 0 .. log2(K)-1) couples pairs at stride 2^s.
    Stage 0 needs no routing; each later stage is preceded by the
    stride-interleave crossing network, which in the P @ T @ R block
    convention is carried by the *previous* block's CR layer.
    """
    stages = int(math.log2(k))
    if 2 ** stages != k:
        raise ValueError(f"butterfly mesh requires power-of-two K, got {k}")

    def one_mesh() -> List[BlockSpec]:
        blocks: List[BlockSpec] = []
        full = np.ones(k // 2, dtype=bool)
        for s in range(stages):
            perm = None
            if s + 1 < stages:
                perm = stride_interleave_perm(k, 2 ** (s + 1))
            blocks.append(BlockSpec(coupler_mask=full.copy(), offset=0,
                                    perm=perm))
        return blocks

    return PTCTopology(k=k, blocks_u=one_mesh(), blocks_v=one_mesh(),
                       name=name)
