"""Memoizing cache for eval-mode unitary builds.

Evaluation loops rebuild the same mesh transfer matrices over and over:
``repro.onn.trainer.evaluate`` calls ``factory.build()`` once per batch
with *unchanged* phases, and the robustness/expressivity sweeps in
:mod:`repro.experiments` and :mod:`repro.analysis` re-realize identical
(topology, phase) configurations across noise draws and targets.

:class:`UnitaryBuildCache` memoizes those builds.  Keys are content
hashes of ``(topology digest, execution-backend token, phase
snapshot)`` so invalidation is automatic: any optimizer step that
touches a phase parameter changes the snapshot bytes and therefore
misses the cache, and switching the execution backend or dtype (e.g.
``"numpy"``/complex128 vs ``"numpy-c64"``) changes the backend token —
a complex64 build can never be served where a complex128 one is
expected, or vice versa (see
:meth:`repro.autograd.backend.ExecutionBackend.cache_token`).  The
cache is only consulted on the *eval* path — grad mode off, no phase
noise, no phase transform — where the build output is a pure function
of the key (see ``UnitaryFactory.build`` in :mod:`repro.ptc.unitary`).

A small LRU bound keeps memory flat; the common access pattern is one
hot entry reused across an entire evaluation pass.

Multiprocess sharing
--------------------
When a cache directory is set (per instance, or globally via
:func:`set_unitary_cache_dir`), entries are written through to disk and
misses fall back to it, so concurrent worker processes — e.g. the
:mod:`repro.service` pool — share builds.  The on-disk protocol is safe
under concurrent readers and writers with no locks:

* every entry is one file named by its content key, produced by an
  atomic same-directory tmp-file + ``os.replace`` (see
  :func:`repro.utils.serialization.atomic_write_bytes`) — readers see
  either the old complete entry or the new complete entry, never a
  torn mix;
* each file carries a blake2b checksum of its payload, verified on
  read — any short or corrupt file is treated as a miss and deleted,
  never served.

``tests/ptc/test_cache_concurrency.py`` hammers one directory from N
processes to lock these guarantees.
"""

from __future__ import annotations

import hashlib
import io
import os
from collections import OrderedDict
from pathlib import Path
from typing import Optional, Union

import numpy as np

__all__ = [
    "UnitaryBuildCache",
    "content_digest",
    "set_unitary_cache_dir",
    "set_unitary_cache_enabled",
    "unitary_cache_dir",
    "unitary_cache_enabled",
]

# Global kill-switch (e.g. for memory-constrained sweeps or debugging).
_CACHE_ENABLED = True

# Global spill directory; None keeps caches memory-only.
_CACHE_DIR: Optional[Path] = None

_CHECKSUM_BYTES = 16


def set_unitary_cache_enabled(enabled: bool) -> bool:
    """Enable/disable all unitary build caches; returns the prior state."""
    global _CACHE_ENABLED
    prev = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return prev


def unitary_cache_enabled() -> bool:
    """Whether eval-mode unitary builds may be served from cache."""
    return _CACHE_ENABLED


def set_unitary_cache_dir(
    directory: Optional[Union[str, Path]],
) -> Optional[Path]:
    """Set (or with ``None``, clear) the global on-disk cache directory.

    All :class:`UnitaryBuildCache` instances without an explicit
    per-instance directory consult this dynamically on every get/put,
    so processes forked after this call inherit the shared tier.
    Returns the previous setting.
    """
    global _CACHE_DIR
    prev = _CACHE_DIR
    if directory is None:
        _CACHE_DIR = None
    else:
        _CACHE_DIR = Path(directory)
        _CACHE_DIR.mkdir(parents=True, exist_ok=True)
    return prev


def unitary_cache_dir() -> Optional[Path]:
    """The global on-disk cache directory, or None when memory-only."""
    return _CACHE_DIR


def _encode_entry(value: np.ndarray) -> bytes:
    """Serialize ``value`` with a leading payload checksum."""
    buf = io.BytesIO()
    np.save(buf, value, allow_pickle=False)
    payload = buf.getvalue()
    digest = hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).digest()
    return digest + payload


def _decode_entry(data: bytes) -> Optional[np.ndarray]:
    """Deserialize an entry; None when short/corrupt (never a torn array)."""
    if len(data) <= _CHECKSUM_BYTES:
        return None
    digest, payload = data[:_CHECKSUM_BYTES], data[_CHECKSUM_BYTES:]
    if hashlib.blake2b(payload, digest_size=_CHECKSUM_BYTES).digest() != digest:
        return None
    try:
        return np.load(io.BytesIO(payload), allow_pickle=False)
    except (ValueError, OSError):
        return None


def content_digest(*arrays: np.ndarray) -> bytes:
    """Stable digest of the raw bytes of one or more arrays."""
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.shape).encode())
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.digest()


class UnitaryBuildCache:
    """Bounded LRU map from content keys to built transfer matrices.

    Stored values are the raw ``(n_units, K, K)`` complex arrays; the
    caller wraps them back into constant tensors.  ``hits``/``misses``
    (and ``disk_hits``) counters make cache behavior observable in
    tests and benchmarks.

    ``directory`` adds a shared on-disk tier with per-entry atomic
    writes (see module docstring); when left as None, the global
    :func:`set_unitary_cache_dir` setting is consulted dynamically.
    """

    def __init__(
        self,
        maxsize: int = 8,
        directory: Optional[Union[str, Path]] = None,
    ):
        self.maxsize = maxsize
        self.directory = None if directory is None else Path(directory)
        self._store: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0

    def __len__(self) -> int:
        return len(self._store)

    def _dir(self) -> Optional[Path]:
        return self.directory if self.directory is not None else _CACHE_DIR

    def _entry_path(self, key: bytes) -> Optional[Path]:
        d = self._dir()
        return None if d is None else d / f"{key.hex()}.npc"

    def get(self, key: bytes) -> Optional[np.ndarray]:
        hit = self._store.get(key)
        if hit is not None:
            self._store.move_to_end(key)
            self.hits += 1
            return hit
        disk = self._disk_get(key)
        if disk is not None:
            self._memory_put(key, disk)  # promote
            self.disk_hits += 1
            self.hits += 1
            return disk
        self.misses += 1
        return None

    def put(self, key: bytes, value: np.ndarray) -> None:
        self._memory_put(key, value)
        self._disk_put(key, value)

    def _memory_put(self, key: bytes, value: np.ndarray) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def _disk_get(self, key: bytes) -> Optional[np.ndarray]:
        path = self._entry_path(key)
        if path is None:
            return None
        try:
            data = path.read_bytes()
        except OSError:
            return None
        value = _decode_entry(data)
        if value is None:
            # Corrupt entry (e.g. torn by a non-atomic copy): drop it so
            # the next writer repopulates; never serve it.
            try:
                path.unlink()
            except OSError:
                pass
        return value

    def _disk_put(self, key: bytes, value: np.ndarray) -> None:
        path = self._entry_path(key)
        if path is None:
            return
        from ..utils.serialization import atomic_write_bytes

        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(path, _encode_entry(value))
        except OSError:
            pass  # disk tier is best-effort; memory tier already holds it

    def clear(self, disk: bool = False) -> None:
        """Drop the in-memory tier (and with ``disk=True``, the shared
        on-disk entries as well)."""
        self._store.clear()
        self.hits = 0
        self.misses = 0
        self.disk_hits = 0
        d = self._dir()
        if disk and d is not None:
            for entry in d.glob("*.npc"):
                try:
                    entry.unlink()
                except OSError:
                    pass
