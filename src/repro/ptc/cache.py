"""Memoizing cache for eval-mode unitary builds.

Evaluation loops rebuild the same mesh transfer matrices over and over:
``repro.onn.trainer.evaluate`` calls ``factory.build()`` once per batch
with *unchanged* phases, and the robustness/expressivity sweeps in
:mod:`repro.experiments` and :mod:`repro.analysis` re-realize identical
(topology, phase) configurations across noise draws and targets.

:class:`UnitaryBuildCache` memoizes those builds.  Keys are content
hashes of ``(topology digest, execution-backend token, phase
snapshot)`` so invalidation is automatic: any optimizer step that
touches a phase parameter changes the snapshot bytes and therefore
misses the cache, and switching the execution backend or dtype (e.g.
``"numpy"``/complex128 vs ``"numpy-c64"``) changes the backend token —
a complex64 build can never be served where a complex128 one is
expected, or vice versa (see
:meth:`repro.autograd.backend.ExecutionBackend.cache_token`).  The
cache is only consulted on the *eval* path — grad mode off, no phase
noise, no phase transform — where the build output is a pure function
of the key (see ``UnitaryFactory.build`` in :mod:`repro.ptc.unitary`).

A small LRU bound keeps memory flat; the common access pattern is one
hot entry reused across an entire evaluation pass.
"""

from __future__ import annotations

import hashlib
from collections import OrderedDict
from typing import Optional

import numpy as np

__all__ = [
    "UnitaryBuildCache",
    "content_digest",
    "set_unitary_cache_enabled",
    "unitary_cache_enabled",
]

# Global kill-switch (e.g. for memory-constrained sweeps or debugging).
_CACHE_ENABLED = True


def set_unitary_cache_enabled(enabled: bool) -> bool:
    """Enable/disable all unitary build caches; returns the prior state."""
    global _CACHE_ENABLED
    prev = _CACHE_ENABLED
    _CACHE_ENABLED = bool(enabled)
    return prev


def unitary_cache_enabled() -> bool:
    """Whether eval-mode unitary builds may be served from cache."""
    return _CACHE_ENABLED


def content_digest(*arrays: np.ndarray) -> bytes:
    """Stable digest of the raw bytes of one or more arrays."""
    h = hashlib.blake2b(digest_size=16)
    for a in arrays:
        a = np.ascontiguousarray(a)
        h.update(str(a.shape).encode())
        h.update(str(a.dtype).encode())
        h.update(a.tobytes())
    return h.digest()


class UnitaryBuildCache:
    """Bounded LRU map from content keys to built transfer matrices.

    Stored values are the raw ``(n_units, K, K)`` complex arrays; the
    caller wraps them back into constant tensors.  ``hits``/``misses``
    counters make cache behavior observable in tests and benchmarks.
    """

    def __init__(self, maxsize: int = 8):
        self.maxsize = maxsize
        self._store: "OrderedDict[bytes, np.ndarray]" = OrderedDict()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        return len(self._store)

    def get(self, key: bytes) -> Optional[np.ndarray]:
        hit = self._store.get(key)
        if hit is None:
            self.misses += 1
            return None
        self._store.move_to_end(key)
        self.hits += 1
        return hit

    def put(self, key: bytes, value: np.ndarray) -> None:
        self._store[key] = value
        self._store.move_to_end(key)
        while len(self._store) > self.maxsize:
            self._store.popitem(last=False)

    def clear(self) -> None:
        self._store.clear()
        self.hits = 0
        self.misses = 0
