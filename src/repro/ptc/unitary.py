"""Trainable unitary factories for photonic tensor cores.

A *unitary factory* owns the trainable phases of a photonic mesh and
builds, on every forward pass, a batch of K x K transfer matrices — one
per (p, q) weight block of an ONN layer (the paper's Eq. (2): the
*topology* is shared across blocks, the *phases* are per-block).

Three concrete factories implement the three PTC families compared in
the paper:

* :class:`MZIMeshFactory` — rectangular (Clements-style) mesh of MZIs;
  universal but large (the MZI-ONN baseline [Shen et al. 2017]).
* :class:`ButterflyFactory` — log-depth butterfly mesh with trainable
  phases (the FFT-ONN baseline [Gu et al. 2020], in its general
  trainable-transform form).
* :class:`FixedTopologyFactory` — an ADEPT-searched topology: a fixed
  sequence of (CR permutation, DC column, PS column) blocks with
  trainable phases.

All factories support Gaussian phase-noise injection (``noise_std``)
used for variation-aware training and robustness evaluation (paper
Fig. 4).

Backends
--------
Every factory builds its transfer matrices through one of two paths:

* ``backend="fast"`` (default) — vectorized column application: the
  phase factors of *all* columns are computed in one tensor op and the
  whole column cascade runs as a single fused graph node
  (:func:`repro.autograd.phase_column_cascade` /
  :func:`repro.autograd.matmul_chain`).
* ``backend="reference"`` — the original one-op-per-column loop, kept
  as executable documentation and as the ground truth for the parity
  tests in ``tests/ptc/test_fast_path_parity.py``.

Both paths compute the same math; they differ only in how many graph
nodes (and Python round-trips) the build costs.  On the eval path
(grad mode off, no noise) fast builds are additionally memoized in a
:class:`repro.ptc.cache.UnitaryBuildCache` keyed on the (topology,
phase snapshot) content, so repeated evaluation of an unchanged mesh
is a dictionary lookup.

Execution backends
------------------
Orthogonal to the build-path choice above, every factory routes its
array arithmetic through an *execution backend*
(:mod:`repro.autograd.backend`): ``exec_backend`` may be set at
construction, overridden per ``build``/``build_trials`` call, or left
``None`` to follow the process-wide default.  The stock ``"numpy"``
backend computes in complex128 and is bit-compatible with the graph
kernels; the ``"numpy-c64"`` lane computes forward-only builds in
complex64 for ~2x memory-bandwidth savings.  When a forward-only
backend is selected and grad mode is off, ``build()`` routes through
the trial-batched kernels (a T=1 stack) instead of the autograd graph;
under grad mode the backend demotes to its full-precision fallback so
training numerics never change.  Cache keys include the backend
identity token, so complex64 and complex128 artifacts can never serve
each other's hits.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple

import numpy as np

from ..autograd import (
    Tensor,
    custom_grad,
    ensure_tensor,
    is_grad_enabled,
    matmul_chain,
    no_grad,
    phase_column_cascade,
)
from ..autograd import tensor as T
from ..autograd.backend import BackendLike, ExecutionBackend, resolve_backend
from ..nn.module import Module, Parameter
from ..photonics.crossings import perm_to_matrix
from ..photonics.devices import T_5050, dc_layer_matrix_np
from ..utils.rng import get_rng
from .cache import UnitaryBuildCache, content_digest, unitary_cache_enabled

#: Build backend used when a factory is constructed without an explicit
#: ``backend`` argument.  ``"fast"`` = fused cascade, ``"reference"`` =
#: per-column op loop.
DEFAULT_BACKEND = "fast"

_BACKENDS = ("fast", "reference")


def batched_scatter(
    values: Tensor,
    rows: np.ndarray,
    cols: np.ndarray,
    k: int,
) -> Tensor:
    """Build (..., K, K) matrices with ``out[..., rows[i], cols[i]] =
    values[..., i]`` (indices unique; all other entries zero)."""
    values = ensure_tensor(values)
    batch = values.shape[:-1]
    out = np.zeros(batch + (k, k), dtype=values.data.dtype)
    out[..., rows, cols] = values.data

    def backward(g: np.ndarray):
        return (g[..., rows, cols],)

    return custom_grad(out, (values,), backward)


def _phase_factor(phases: Tensor) -> Tensor:
    """exp(-j * phi) elementwise (phases real)."""
    return T.exp(T.mul(Tensor(np.array(-1j)), phases))


def block_constant_matrix(
    k: int,
    perm: Optional[Sequence[int]],
    coupler_mask: np.ndarray,
    offset: int,
) -> np.ndarray:
    """Constant ``P @ T`` matrix of one searched block.

    The single source of truth for turning a block spec (CR
    permutation, DC coupler mask, column offset) into its transfer
    matrix — shared by :class:`FixedTopologyFactory`, the population
    scorer (:mod:`repro.ptc.population`), and the nonideality model
    (which left-multiplies its loss diagonal onto this).
    """
    ts = [T_5050 if placed else 1.0 for placed in np.asarray(coupler_mask, dtype=bool)]
    t_mat = dc_layer_matrix_np(ts, k, int(offset))
    p_mat = np.eye(k) if perm is None else perm_to_matrix(perm)
    return p_mat @ t_mat


class UnitaryFactory(Module):
    """Base class: builds ``n_units`` trainable K x K transfer matrices.

    Attributes
    ----------
    k: mesh size (number of waveguides).
    n_units: number of independent phase configurations (one per
        weight block of the owning ONN layer).
    noise_std: std-dev of Gaussian phase noise added at build time
        (0 disables).  Used by variation-aware training / Fig. 4.
    backend: ``"fast"`` (fused cascade, default) or ``"reference"``
        (per-column loop); see the module docstring.
    exec_backend: execution backend (name or
        :class:`~repro.autograd.backend.ExecutionBackend`) used for the
        array arithmetic, or None to follow the process-wide default.
    build_cache: eval-mode memoization of built transfer matrices
        (:class:`repro.ptc.cache.UnitaryBuildCache`).
    """

    def __init__(
        self,
        k: int,
        n_units: int,
        rng=None,
        backend: Optional[str] = None,
        exec_backend: Optional[BackendLike] = None,
    ):
        super().__init__()
        self.k = k
        self.n_units = n_units
        self.noise_std = 0.0
        #: Optional Tensor -> Tensor hook applied to phases before
        #: noise injection — e.g. an STE quantizer modelling a low-bit
        #: phase-control DAC (:mod:`repro.core.quantization`).
        self.phase_transform = None
        backend = DEFAULT_BACKEND if backend is None else backend
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        self.backend = backend
        self.exec_backend = exec_backend
        self.build_cache = UnitaryBuildCache()
        self._topology_digest = b""
        self._rng = get_rng(rng)
        #: Deterministic additive phase offsets, one array per entry of
        #: :meth:`phase_parameters` (or None).  When installed they
        #: replace random noise injection entirely: every build adds
        #: exactly these offsets — how the Monte-Carlo engine's
        #: sequential reference backend replays a frozen noise
        #: realization through the normal per-batch build path.
        self.trial_phase_offsets: Optional[Tuple[np.ndarray, ...]] = None

    def _noisy(self, phases: Tensor) -> Tensor:
        fixed = None
        if self.trial_phase_offsets is not None:
            for p, off in zip(self.phase_parameters(), self.trial_phase_offsets):
                if p is phases:
                    fixed = off
                    break
        if self.phase_transform is not None:
            phases = self.phase_transform(phases)
        if fixed is not None:
            return phases + Tensor(np.asarray(fixed))
        if self.noise_std > 0.0:
            noise = self._rng.normal(0.0, self.noise_std, size=phases.shape)
            return phases + Tensor(noise)
        return phases

    # -- build dispatch -------------------------------------------------
    def _resolve_exec(
        self, exec_backend: Optional[BackendLike] = None
    ) -> ExecutionBackend:
        """Resolve the per-call > per-factory > process-default chain."""
        return resolve_backend(
            exec_backend if exec_backend is not None else self.exec_backend
        )

    def build(self, exec_backend: Optional[BackendLike] = None) -> Tensor:
        """Return transfer matrices of shape (n_units, K, K), complex.

        Dispatches to the configured backend; on the eval path (grad
        mode off, no noise, no phase transform) fast builds are served
        from / recorded into :attr:`build_cache`.  With a forward-only
        execution backend (e.g. ``"numpy-c64"``) and grad mode off, the
        build routes through the trial-batched kernels instead of the
        autograd graph; under grad mode forward-only backends demote to
        their full-precision fallback.
        """
        eb = self._resolve_exec(exec_backend)
        if eb.forward_only and not is_grad_enabled():
            return self._build_forward_only(eb)
        if self.backend == "reference":
            return self._build_reference()
        if self._cacheable():
            key = self._cache_key(eb)
            hit = self.build_cache.get(key)
            if hit is not None:
                return Tensor(hit)
            out = self._build_fast(eb)
            self.build_cache.put(key, out.data)
            return out
        return self._build_fast(eb)

    def _build_forward_only(self, eb: ExecutionBackend) -> Tensor:
        """Eval-only build through the trial-batched kernels (T=1)."""
        if self._cacheable():
            key = self._cache_key(eb)
            hit = self.build_cache.get(key)
            if hit is not None:
                return Tensor(hit)
            out = self._forward_only_data(eb)
            self.build_cache.put(key, out)
            return Tensor(out)
        return Tensor(self._forward_only_data(eb))

    def _forward_only_data(self, eb: ExecutionBackend) -> np.ndarray:
        return self.build_trials(
            self._single_trial_offsets(), backend="fast", exec_backend=eb
        )[0]

    def _single_trial_offsets(self) -> Tuple[np.ndarray, ...]:
        """Additive phase offsets reproducing one :meth:`_noisy` build
        as a T=1 trial stack: installed replay offsets take precedence,
        then fresh noise draws (same RNG stream and parameter order as
        the graph path), else zeros."""
        params = self.phase_parameters()
        if self.trial_phase_offsets is not None:
            return tuple(
                np.asarray(o, dtype=float)[None] for o in self.trial_phase_offsets
            )
        if self.noise_std > 0.0:
            return tuple(
                self._rng.normal(0.0, self.noise_std, size=(1,) + p.data.shape)
                for p in params
            )
        return tuple(np.zeros((1,) + p.data.shape) for p in params)

    def _cacheable(self) -> bool:
        return (
            unitary_cache_enabled()
            and not is_grad_enabled()
            and self.noise_std == 0.0
            and self.phase_transform is None
            and self.trial_phase_offsets is None
        )

    def _cache_key(self, eb: Optional[ExecutionBackend] = None) -> bytes:
        eb = self._resolve_exec(None) if eb is None else eb
        return (
            self._topology_digest
            + eb.cache_token()
            + content_digest(*(p.data for p in self.parameters()))
        )

    def _build_fast(self, eb: Optional[ExecutionBackend] = None) -> Tensor:
        raise NotImplementedError

    def _build_reference(self) -> Tensor:
        raise NotImplementedError

    # -- trial-batched Monte-Carlo builds -------------------------------
    #
    # The robustness engine (:mod:`repro.core.variation`) evaluates a
    # model under T = (noise levels x runs) independent phase-noise
    # realizations.  Instead of re-seeding ``_rng`` and rebuilding the
    # mesh T times, it pre-draws additive phase offsets for all trials
    # and asks the factory for the whole (T, n_units, K, K) stack in
    # one forward-only fused kernel.  No graph nodes are created —
    # trial builds are eval-only by construction.

    def phase_parameters(self) -> List[Parameter]:
        """The phase parameters noise is injected into, in a fixed
        order shared by :meth:`draw_trial_noise` and
        :meth:`build_trials`."""
        raise NotImplementedError

    def draw_trial_noise(
        self, stds: np.ndarray, rng: np.random.Generator
    ) -> Tuple[np.ndarray, ...]:
        """Draw additive phase offsets for ``T`` trials in one call.

        ``stds`` has shape (T,): the Gaussian phase-noise std-dev of
        each trial (entries may differ — that is how a noise-level
        sweep becomes a single batched build).  Returns one array of
        shape ``(T,) + param.shape`` per entry of
        :meth:`phase_parameters`.
        """
        stds = np.asarray(stds, dtype=float)
        if stds.ndim != 1:
            raise ValueError(f"stds must be 1-D (one per trial), got {stds.shape}")
        out = []
        for p in self.phase_parameters():
            scale = stds.reshape((len(stds),) + (1,) * p.data.ndim)
            out.append(scale * rng.standard_normal((len(stds),) + p.data.shape))
        return tuple(out)

    def build_trials(
        self,
        offsets: Sequence[np.ndarray],
        backend: Optional[str] = None,
        const_stacks: Optional[np.ndarray] = None,
        exec_backend: Optional[BackendLike] = None,
    ) -> np.ndarray:
        """Build noisy transfer matrices for all trials at once.

        ``offsets`` is the tuple returned by :meth:`draw_trial_noise`
        (additive, per-trial phase offsets).  Returns a plain numpy
        array of shape ``(T, n_units, K, K)``.

        ``backend`` overrides the factory's configured backend:
        ``"fast"`` runs every trial through one fused cascade,
        ``"reference"`` loops trials through the per-column math —
        kept as the parity/benchmark baseline of the Monte-Carlo
        engine.  ``const_stacks`` (searched topologies only) supplies
        per-trial constant block matrices of shape ``(T, B, K, K)``,
        which is how fabrication-sample scenario grids ride through
        the same kernel.  ``exec_backend`` selects the array engine /
        dtype (trial builds are forward-only by construction, so
        forward-only lanes such as ``"numpy-c64"`` apply directly).
        """
        backend = self.backend if backend is None else backend
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        eb = self._resolve_exec(exec_backend)
        if const_stacks is not None:
            raise ValueError(
                f"{type(self).__name__} does not support per-trial const_stacks"
            )
        if backend == "reference":
            return self._build_trials_reference(offsets, eb)
        return self._build_trials_fast(offsets, eb)

    def _transformed_phase_data(self, param: Parameter) -> np.ndarray:
        """``param``'s phase values after the optional phase transform
        (e.g. a DAC quantizer) — the programmed drive that noise and
        crosstalk act on."""
        if self.phase_transform is None:
            return param.data
        with no_grad():
            return self.phase_transform(ensure_tensor(param)).data

    def _trial_phases(self, param: Parameter, offset: np.ndarray) -> np.ndarray:
        """Base phases (+ optional transform) plus per-trial offsets,
        shape ``(T,) + param.shape``."""
        offset = np.asarray(offset, dtype=float)
        if offset.shape[1:] != param.data.shape:
            raise ValueError(
                f"offset shape {offset.shape} does not broadcast over "
                f"phases of shape {param.data.shape}"
            )
        return self._transformed_phase_data(param)[None] + offset

    def _build_trials_fast(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        raise NotImplementedError

    def _build_trials_reference(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        raise NotImplementedError

    def forward(self) -> Tensor:
        return self.build()

    # Subclasses report their own device usage for footprint accounting.
    def device_counts(self) -> Tuple[int, int, int]:
        """(n_ps, n_dc, n_cr) of ONE mesh instance (topology-level)."""
        raise NotImplementedError


class MZIMeshFactory(UnitaryFactory):
    """Rectangular MZI mesh (Clements arrangement), universal at size K.

    Layer ``l`` (l = 0..K-1) holds MZIs on waveguide pairs starting at
    offset ``l % 2``; a full mesh has K(K-1)/2 MZIs.  Each MZI
    contributes an internal phase ``theta`` and an external phase
    ``phi``; its 2x2 transfer (50:50 couplers) is

        M(theta, phi) = 1/2 * [[ (a-1) e^{-j phi},  j (a+1)        ],
                               [ j (a+1) e^{-j phi}, (1-a)         ]],
        a = exp(-j theta)

    which is the closed form of DC @ PS(theta) @ DC @ PS(phi).

    The fast backend computes the four 2x2 entries of *every* MZI in
    the mesh with whole-array ops, scatters them into a stack of
    column matrices in one custom op, and folds the stack with
    :func:`repro.autograd.matmul_chain`.
    """

    def __init__(
        self,
        k: int,
        n_units: int,
        rng=None,
        backend: Optional[str] = None,
        exec_backend: Optional[BackendLike] = None,
    ):
        super().__init__(k, n_units, rng=rng, backend=backend, exec_backend=exec_backend)
        self.n_layers = k
        layout = []
        for layer in range(self.n_layers):
            offset = layer % 2
            m = (k - offset) // 2
            layout.append((offset, m))
        self._layout = layout
        rng_ = get_rng(rng)
        max_m = max(m for _, m in layout) if layout else 0
        self.theta = Parameter(rng_.uniform(0, 2 * math.pi, size=(n_units, self.n_layers, max_m)))
        self.phi = Parameter(rng_.uniform(0, 2 * math.pi, size=(n_units, self.n_layers, max_m)))
        # Flattened (layer, slot, waveguide) indices of every MZI in the
        # mesh plus the pass-through diagonal of each column — the
        # scatter pattern of the fast backend.
        lay, slot, pos = [], [], []
        diag = np.zeros((self.n_layers, k, k), dtype=complex)
        for layer, (offset, m) in enumerate(layout):
            p = offset + 2 * np.arange(m)
            lay.append(np.full(m, layer, dtype=int))
            slot.append(np.arange(m))
            pos.append(p)
            covered = np.zeros(k, dtype=bool)
            covered[p] = True
            covered[p + 1] = True
            diag[layer] = np.diag((~covered).astype(complex))
        self._mzi_lay = np.concatenate(lay) if lay else np.zeros(0, dtype=int)
        self._mzi_slot = np.concatenate(slot) if slot else np.zeros(0, dtype=int)
        self._mzi_pos = np.concatenate(pos) if pos else np.zeros(0, dtype=int)
        self._column_diag = diag
        self._topology_digest = content_digest(
            np.array([k, self.n_layers]), self._mzi_lay, self._mzi_pos
        )

    def _assemble_columns(self, m00, m01, m10, m11) -> Tensor:
        """Scatter per-MZI 2x2 entries into (n_units, L, K, K) columns."""
        lay, slot, pos = self._mzi_lay, self._mzi_slot, self._mzi_pos
        parts = (m00, m01, m10, m11)
        rows = (pos, pos, pos + 1, pos + 1)
        cols = (pos, pos + 1, pos, pos + 1)
        out = np.broadcast_to(
            self._column_diag, (self.n_units,) + self._column_diag.shape
        ).copy()
        for part, r, c in zip(parts, rows, cols):
            out[:, lay, r, c] = part.data[:, lay, slot]

        def backward(g: np.ndarray):
            grads = []
            for _part, r, c in zip(parts, rows, cols):
                gp = np.zeros((self.n_units,) + self.theta.shape[1:], dtype=complex)
                gp[:, lay, slot] = g[:, lay, r, c]
                grads.append(gp)
            return tuple(grads)

        return custom_grad(out, parts, backward)

    def _build_fast(self, eb: Optional[ExecutionBackend] = None) -> Tensor:
        theta = self._noisy(self.theta)
        phi = self._noisy(self.phi)
        a = _phase_factor(theta)  # (n_units, L, max_m)
        e = _phase_factor(phi)
        half = Tensor(np.array(0.5))
        jj = Tensor(np.array(1j))
        m00 = (a - 1.0) * e * half
        m01 = jj * (a + 1.0) * half
        m10 = jj * (a + 1.0) * e * half
        m11 = (1.0 - a) * half
        columns = self._assemble_columns(m00, m01, m10, m11)
        return matmul_chain(columns, backend=self._resolve_exec(eb))

    def _build_reference(self) -> Tensor:
        theta = self._noisy(self.theta)
        phi = self._noisy(self.phi)
        u: Optional[Tensor] = None
        for layer, (offset, m) in enumerate(self._layout):
            if m == 0:
                continue
            th = theta[:, layer, :m]
            ph = phi[:, layer, :m]
            a = _phase_factor(th)
            e = _phase_factor(ph)
            half = Tensor(np.array(0.5))
            jj = Tensor(np.array(1j))
            m00 = (a - 1.0) * e * half
            m01 = jj * (a + 1.0) * half
            m10 = jj * (a + 1.0) * e * half
            m11 = (1.0 - a) * half
            pos = offset + 2 * np.arange(m)
            rows = np.concatenate([pos, pos, pos + 1, pos + 1])
            cols = np.concatenate([pos, pos + 1, pos, pos + 1])
            vals = T.concat([m00, m01, m10, m11], axis=-1)
            mat = batched_scatter(vals, rows, cols, self.k)
            covered = np.zeros(self.k, dtype=bool)
            covered[pos] = True
            covered[pos + 1] = True
            mat = mat + Tensor(np.diag((~covered).astype(complex)))
            u = mat if u is None else mat @ u
        assert u is not None
        return u

    # -- trial-batched builds ------------------------------------------
    def phase_parameters(self) -> List[Parameter]:
        return [self.theta, self.phi]

    @staticmethod
    def _mzi_entries(a: np.ndarray, e: np.ndarray):
        """The four 2x2 entries of every MZI given ``a = exp(-j theta)``
        and ``e = exp(-j phi)`` (same closed form as the graph path)."""
        m00 = (a - 1.0) * e * 0.5
        m01 = 1j * (a + 1.0) * 0.5
        m10 = 1j * (a + 1.0) * e * 0.5
        m11 = (1.0 - a) * 0.5
        return m00, m01, m10, m11

    def _build_trials_fast(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        # Each MZI column is block-diagonal in 2x2 units, so applying it
        # to the running product is a paired *row rotation* — O(K^2)
        # per column instead of the O(K^3) matmul fold, and no (T, L,
        # K, K) column scatter to materialize.  This is what makes the
        # trial-batched build cheaper per realization than replaying
        # the graph build T times, not just a loop-fusion win.
        cdt = eb.complex_dtype
        off_theta, off_phi = offsets
        theta = self._trial_phases(self.theta, off_theta)  # (T, n_units, L, M)
        phi = self._trial_phases(self.phi, off_phi)
        t = theta.shape[0]
        n = t * self.n_units
        # exp in double precision, then cast: matches the rounding a
        # graph-built matrix shows after a dtype cast.
        a = np.exp(-1j * theta).reshape((n,) + self.theta.shape[1:]).astype(cdt, copy=False)
        e = np.exp(-1j * phi).reshape((n,) + self.phi.shape[1:]).astype(cdt, copy=False)
        m00, m01, m10, m11 = self._mzi_entries(a, e)
        u = np.broadcast_to(np.eye(self.k, dtype=cdt), (n, self.k, self.k)).copy()
        for layer, (offset, m) in enumerate(self._layout):
            if m == 0:
                continue
            pos = offset + 2 * np.arange(m)
            top = u[:, pos, :]  # (n, m, K) — fancy indexing copies
            bot = u[:, pos + 1, :]
            c00 = m00[:, layer, :m, None]
            c01 = m01[:, layer, :m, None]
            c10 = m10[:, layer, :m, None]
            c11 = m11[:, layer, :m, None]
            u[:, pos, :] = c00 * top + c01 * bot
            u[:, pos + 1, :] = c10 * top + c11 * bot
        return u.reshape(t, self.n_units, self.k, self.k)

    def _build_trials_reference(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        cdt = eb.complex_dtype
        off_theta, off_phi = offsets
        theta = self._trial_phases(self.theta, off_theta)
        phi = self._trial_phases(self.phi, off_phi)
        t = theta.shape[0]
        out = np.empty((t, self.n_units, self.k, self.k), dtype=cdt)
        for trial in range(t):
            u: Optional[np.ndarray] = None
            for layer, (offset, m) in enumerate(self._layout):
                if m == 0:
                    continue
                a = np.exp(-1j * theta[trial, :, layer, :m]).astype(cdt, copy=False)
                e = np.exp(-1j * phi[trial, :, layer, :m]).astype(cdt, copy=False)
                m00, m01, m10, m11 = self._mzi_entries(a, e)
                pos = offset + 2 * np.arange(m)
                covered = np.zeros(self.k, dtype=bool)
                covered[pos] = True
                covered[pos + 1] = True
                mat = np.broadcast_to(
                    np.diag((~covered).astype(cdt)),
                    (self.n_units, self.k, self.k),
                ).copy()
                mat[:, pos, pos] = m00
                mat[:, pos, pos + 1] = m01
                mat[:, pos + 1, pos] = m10
                mat[:, pos + 1, pos + 1] = m11
                u = mat if u is None else mat @ u
            assert u is not None
            out[trial] = u
        return out

    def device_counts(self) -> Tuple[int, int, int]:
        # Paper accounting (Table 1): each MZI column is two blocks, and
        # every block is billed a full K-wide PS column, so one mesh has
        # #PS = K * 2K; each of the K(K-1)/2 MZIs has two couplers.
        n_mzi = sum(m for _, m in self._layout)
        return 2 * self.k * self.k, 2 * n_mzi, 0


class ButterflyFactory(UnitaryFactory):
    """Log-depth butterfly mesh with trainable phases (FFT-ONN family).

    Stage ``s`` (s = 0..log2(K)-1) applies a full PS column followed by
    50:50 couplers on waveguide pairs at stride 2^s.  The stride
    pairing is realized on chip with waveguide crossings, whose count
    is accounted analytically in
    :func:`repro.photonics.footprint.butterfly_footprint`.

    The stage coupling matrices are constant, so the fast backend is a
    single :func:`repro.autograd.phase_column_cascade` over the stacked
    stages.
    """

    def __init__(
        self,
        k: int,
        n_units: int,
        rng=None,
        backend: Optional[str] = None,
        exec_backend: Optional[BackendLike] = None,
    ):
        super().__init__(k, n_units, rng=rng, backend=backend, exec_backend=exec_backend)
        stages = int(math.log2(k))
        if 2 ** stages != k:
            raise ValueError(f"butterfly mesh requires power-of-two K, got {k}")
        self.stages = stages
        rng_ = get_rng(rng)
        self.phases = Parameter(rng_.uniform(0, 2 * math.pi, size=(n_units, stages, k)))
        # Constant coupler matrices per stage, stacked for the cascade.
        from .butterfly import butterfly_stage_matrix

        self._stage_dc: List[np.ndarray] = [
            butterfly_stage_matrix(k, s) for s in range(stages)
        ]
        self._stage_stack = np.stack(self._stage_dc) if stages else np.zeros((0, k, k), complex)
        self._topology_digest = content_digest(self._stage_stack)

    def _build_fast(self, eb: Optional[ExecutionBackend] = None) -> Tensor:
        ps = _phase_factor(self._noisy(self.phases))  # (n_units, stages, K)
        return phase_column_cascade(
            Tensor(self._stage_stack), ps, backend=self._resolve_exec(eb)
        )

    def _build_reference(self) -> Tensor:
        phases = self._noisy(self.phases)
        u: Optional[Tensor] = None
        for s in range(self.stages):
            ps = _phase_factor(phases[:, s, :])  # (n_units, K)
            dc = Tensor(self._stage_dc[s])
            if u is None:
                # dc @ diag(ps): scale columns of dc per unit.
                u = dc * ps.reshape((self.n_units, 1, self.k))
            else:
                u = dc @ (ps.reshape((self.n_units, self.k, 1)) * u)
        assert u is not None
        return u

    # -- trial-batched builds ------------------------------------------
    def phase_parameters(self) -> List[Parameter]:
        return [self.phases]

    def _build_trials_fast(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        (off,) = offsets
        phases = self._trial_phases(self.phases, off)  # (T, n_units, S, K)
        t = phases.shape[0]
        ps = np.exp(-1j * phases).reshape(t * self.n_units, self.stages, self.k)
        u = eb.phase_column_cascade_forward(self._stage_stack, ps)
        return u.reshape(t, self.n_units, self.k, self.k)

    def _build_trials_reference(
        self, offsets: Sequence[np.ndarray], eb: ExecutionBackend
    ) -> np.ndarray:
        cdt = eb.complex_dtype
        (off,) = offsets
        phases = self._trial_phases(self.phases, off)
        t = phases.shape[0]
        out = np.empty((t, self.n_units, self.k, self.k), dtype=cdt)
        for trial in range(t):
            u: Optional[np.ndarray] = None
            for s in range(self.stages):
                ps = np.exp(-1j * phases[trial, :, s, :]).astype(cdt, copy=False)
                dc = self._stage_dc[s].astype(cdt, copy=False)
                if u is None:
                    u = dc * ps[:, None, :]
                else:
                    u = dc @ (ps[:, :, None] * u)
            assert u is not None
            out[trial] = u
        return out

    def device_counts(self) -> Tuple[int, int, int]:
        from ..photonics.footprint import _butterfly_crossings

        n_ps = self.stages * self.k
        n_dc = self.stages * (self.k // 2)
        n_cr = _butterfly_crossings(self.k)
        return n_ps, n_dc, n_cr


class FixedTopologyFactory(UnitaryFactory):
    """A searched (or hand-specified) ADEPT block topology.

    Each block b applies, in light-propagation order,
    ``P_b @ T_b @ R(Phi_b)``: a PS column (trainable phases), a DC
    column (fixed coupler placement), and a crossing network (fixed
    permutation).  ``blocks`` is a sequence of
    ``(perm, coupler_mask, offset)`` with

    * ``perm``: index vector (output i reads input perm[i]) or None
      for identity routing;
    * ``coupler_mask``: boolean array, one entry per coupler *slot*
      (slot i couples waveguides offset+2i, offset+2i+1); True means a
      50:50 DC is placed, False means pass-through;
    * ``offset``: 0 or 1, the interleaving of the DC column.

    The per-block constant ``P_b @ T_b`` matrices live in
    :attr:`_const`; assigning a new list (as the nonideality model in
    :mod:`repro.photonics.nonideality` does to substitute fabricated
    device responses) re-stacks the fast-path constants and invalidates
    the build cache.
    """

    def __init__(
        self,
        k: int,
        n_units: int,
        blocks: Sequence[Tuple[Optional[Sequence[int]], np.ndarray, int]],
        rng=None,
        backend: Optional[str] = None,
        exec_backend: Optional[BackendLike] = None,
    ):
        super().__init__(k, n_units, rng=rng, backend=backend, exec_backend=exec_backend)
        self.blocks_spec = [
            (None if perm is None else np.asarray(perm, dtype=int),
             np.asarray(mask, dtype=bool),
             int(offset))
            for perm, mask, offset in blocks
        ]
        self.n_blocks = len(self.blocks_spec)
        rng_ = get_rng(rng)
        self.phases = Parameter(
            rng_.uniform(0, 2 * math.pi, size=(n_units, self.n_blocks, k))
        )
        # Constant (P_b @ T_b) matrix of each block (see _const property).
        self._const = [
            block_constant_matrix(k, perm, mask, offset)
            for perm, mask, offset in self.blocks_spec
        ]

    @property
    def _const(self) -> List[np.ndarray]:
        """Per-block constant (P @ T) matrices, in application order."""
        return self._const_list

    @_const.setter
    def _const(self, value: Sequence[np.ndarray]) -> None:
        self._const_list = [np.asarray(c, dtype=complex) for c in value]
        self._const_stack = (
            np.stack(self._const_list)
            if self._const_list
            else np.zeros((0, self.k, self.k), dtype=complex)
        )
        self._topology_digest = content_digest(self._const_stack)
        self.build_cache.clear()

    def _build_fast(self, eb: Optional[ExecutionBackend] = None) -> Tensor:
        if self.n_blocks == 0:
            eye = np.broadcast_to(np.eye(self.k, dtype=complex), (self.n_units, self.k, self.k))
            return Tensor(eye.copy())
        ps = _phase_factor(self._noisy(self.phases))  # (n_units, B, K)
        return phase_column_cascade(
            Tensor(self._const_stack), ps, backend=self._resolve_exec(eb)
        )

    def _build_reference(self) -> Tensor:
        phases = self._noisy(self.phases)
        u: Optional[Tensor] = None
        for b in range(self.n_blocks):
            ps = _phase_factor(phases[:, b, :])  # (n_units, K)
            cb = Tensor(self._const[b])
            if u is None:
                u = cb * ps.reshape((self.n_units, 1, self.k))
            else:
                u = cb @ (ps.reshape((self.n_units, self.k, 1)) * u)
        if u is None:
            eye = np.broadcast_to(np.eye(self.k, dtype=complex), (self.n_units, self.k, self.k))
            return Tensor(eye.copy())
        return u

    # -- trial-batched builds ------------------------------------------
    def phase_parameters(self) -> List[Parameter]:
        return [self.phases]

    def build_trials(
        self,
        offsets: Sequence[np.ndarray],
        backend: Optional[str] = None,
        const_stacks: Optional[np.ndarray] = None,
        exec_backend: Optional[BackendLike] = None,
    ) -> np.ndarray:
        backend = self.backend if backend is None else backend
        if backend not in _BACKENDS:
            raise ValueError(f"backend must be one of {_BACKENDS}, got {backend!r}")
        eb = self._resolve_exec(exec_backend)
        if const_stacks is not None:
            const_stacks = np.asarray(const_stacks, dtype=complex)
            if const_stacks.shape[1:] != (self.n_blocks, self.k, self.k):
                raise ValueError(
                    f"const_stacks shape {const_stacks.shape} != "
                    f"(T, {self.n_blocks}, {self.k}, {self.k})"
                )
        if backend == "reference":
            return self._build_trials_reference(offsets, eb, const_stacks)
        return self._build_trials_fast(offsets, eb, const_stacks)

    def _build_trials_fast(
        self,
        offsets: Sequence[np.ndarray],
        eb: ExecutionBackend,
        const_stacks: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        (off,) = offsets
        phases = self._trial_phases(self.phases, off)  # (T, n_units, B, K)
        t = phases.shape[0]
        if self.n_blocks == 0:
            eye = np.eye(self.k, dtype=eb.complex_dtype)
            return np.broadcast_to(eye, (t, self.n_units, self.k, self.k)).copy()
        ps = np.exp(-1j * phases).reshape(t * self.n_units, self.n_blocks, self.k)
        if const_stacks is None:
            consts = self._const_stack  # (B, K, K), shared by all trials
        else:
            # One constant stack per trial, repeated across the trial's
            # n_units meshes to match the flattened batch axis.
            consts = np.repeat(const_stacks, self.n_units, axis=0)
        u = eb.phase_column_cascade_forward(consts, ps)
        return u.reshape(t, self.n_units, self.k, self.k)

    def _build_trials_reference(
        self,
        offsets: Sequence[np.ndarray],
        eb: ExecutionBackend,
        const_stacks: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        cdt = eb.complex_dtype
        (off,) = offsets
        phases = self._trial_phases(self.phases, off)
        t = phases.shape[0]
        out = np.empty((t, self.n_units, self.k, self.k), dtype=cdt)
        for trial in range(t):
            consts = (
                self._const_list if const_stacks is None else const_stacks[trial]
            )
            u: Optional[np.ndarray] = None
            for b in range(self.n_blocks):
                ps = np.exp(-1j * phases[trial, :, b, :]).astype(cdt, copy=False)
                cb = np.asarray(consts[b]).astype(cdt, copy=False)
                if u is None:
                    u = cb * ps[:, None, :]
                else:
                    u = cb @ (ps[:, :, None] * u)
            if u is None:
                u = np.broadcast_to(
                    np.eye(self.k, dtype=cdt), (self.n_units, self.k, self.k)
                ).copy()
            out[trial] = u
        return out

    def device_counts(self) -> Tuple[int, int, int]:
        from ..photonics.crossings import count_inversions

        n_ps = self.n_blocks * self.k
        n_dc = sum(int(mask.sum()) for _, mask, _ in self.blocks_spec)
        n_cr = sum(
            0 if perm is None else count_inversions(list(perm))
            for perm, _, _ in self.blocks_spec
        )
        return n_ps, n_dc, n_cr
