"""MZI mesh analysis: Reck-style nulling decomposition.

The MZI-ONN baseline [Shen et al. 2017] relies on the fact that a mesh
of K(K-1)/2 MZIs realizes *any* K x K unitary.  This module provides a
constructive proof used by the test suite: a nulling decomposition that
reduces an arbitrary unitary to a diagonal phase screen by a sequence
of two-waveguide MZI operations, exactly in the parametrization of
:func:`repro.photonics.devices.mzi_matrix` /
:class:`repro.ptc.unitary.MZIMeshFactory`:

    M(theta, phi) = 1/2 [[(a-1) e^{-j phi},   j (a+1)      ],
                         [j (a+1) e^{-j phi}, (1 - a)      ]],   a = e^{-j theta}.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np


@dataclass(frozen=True)
class MZIOp:
    """One MZI applied to waveguides (p, p+1) with phases (theta, phi)."""

    p: int
    theta: float
    phi: float


def mzi_2x2(theta: float, phi: float) -> np.ndarray:
    """Closed-form MZI transfer (matches devices.mzi_matrix)."""
    a = np.exp(-1j * theta)
    e = np.exp(-1j * phi)
    return 0.5 * np.array(
        [[(a - 1) * e, 1j * (a + 1)], [1j * (a + 1) * e, (1 - a)]]
    )


def _embed(op: MZIOp, k: int) -> np.ndarray:
    m = np.eye(k, dtype=complex)
    m[op.p : op.p + 2, op.p : op.p + 2] = mzi_2x2(op.theta, op.phi)
    return m


def _null_theta_phi(u: complex, v: complex) -> Tuple[float, float]:
    """Phases (theta, phi) such that row 1 of M @ [u, v]^T vanishes.

    Uses m10/m11 = e^{-j phi} * cot(theta/2): choose
    theta = 2*atan2(|u|, |v|) and phi = -angle(-v/u).  For u == 0 any
    phi works because theta = 0 is the full-cross state with m11 = 0.
    """
    theta = 2.0 * math.atan2(abs(u), abs(v))
    if abs(u) < 1e-300:
        return 0.0, 0.0
    phi = float(-np.angle(-v / u))
    return float(theta), phi


def reck_decompose(unitary: np.ndarray) -> Tuple[List[MZIOp], np.ndarray]:
    """Null ``unitary`` to a diagonal phase screen with adjacent MZIs.

    Returns ``(ops, diag)`` such that applying the ops in order to the
    input unitary yields a diagonal matrix of unit-modulus entries:

        T_n @ ... @ T_1 @ U = diag

    The constructive existence of this sequence (n = K(K-1)/2) is the
    universality property of the MZI mesh.
    """
    u = np.array(unitary, dtype=complex)
    k = u.shape[0]
    if u.shape != (k, k):
        raise ValueError("input must be square")
    if not np.allclose(u.conj().T @ u, np.eye(k), atol=1e-8):
        raise ValueError("input must be unitary")
    ops: List[MZIOp] = []
    # Null column by column below the diagonal, bubbling entries up with
    # adjacent-pair operations (Reck triangle, adjacent-only variant).
    for col in range(k):
        for row in range(k - 1, col, -1):
            p = row - 1
            a_val = u[p, col]
            b_val = u[row, col]
            if abs(b_val) < 1e-12:
                continue
            theta, phi = _null_theta_phi(a_val, b_val)
            op = MZIOp(p=p, theta=theta, phi=phi)
            t = _embed(op, k)
            u = t @ u
            ops.append(op)
            assert abs(u[row, col]) < 1e-8, (row, col, abs(u[row, col]))
    return ops, u


def reconstruct_from_ops(ops: List[MZIOp], diag: np.ndarray) -> np.ndarray:
    """Invert :func:`reck_decompose`: rebuild U = T_1^H ... T_n^H @ diag."""
    k = diag.shape[0]
    u = np.array(diag, dtype=complex)
    for op in reversed(ops):
        u = _embed(op, k).conj().T @ u
    return u


def max_mzi_count(k: int) -> int:
    """MZIs needed for a universal K x K mesh: K(K-1)/2."""
    return k * (k - 1) // 2
