"""Single-graph batched evaluation of a *population* of PTC topologies.

The ADEPT flow repeatedly needs to score many candidate topologies —
SubMeshes sampled from a trained SuperMesh, ablation variants, or
designs transferred across PDKs.  Scoring them one at a time rebuilds
one graph per candidate per step; this module instead pads all
candidates to a common block depth and evaluates the whole population
as ONE fused cascade (:func:`repro.autograd.phase_column_cascade`), so
a gradient fit over P candidates costs one forward/backward per step
total, not per candidate.

Padding uses the cascade's execution gates: candidate ``p`` with
``B_p`` blocks gets ``B_max - B_p`` identity blocks whose execution
probability is pinned to 0, which the cascade resolves to an exact
skip — the padded transfer equals the unpadded one bit-for-bit.

Entry points
------------
* :class:`TopologyPopulation` — the stacked constants/masks plus a
  ``transfer`` method mapping a phase bank to all candidate unitaries.
* :func:`fit_unitary_population` — batched counterpart of
  :func:`repro.analysis.expressivity.fit_unitary`: jointly fits every
  candidate's phases to a target unitary and reports per-candidate
  errors.  Used by :func:`repro.core.search.rank_candidate_topologies`;
  the evaluation-side companion is
  :func:`repro.onn.trainer.evaluate_population`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from ..autograd import Tensor, phase_column_cascade
from ..autograd import tensor as T
from ..nn.module import Parameter
from ..optim import Adam
from ..utils.rng import get_rng
from .unitary import block_constant_matrix

__all__ = [
    "PopulationFitResult",
    "TopologyPopulation",
    "fit_unitary_population",
]


@dataclass
class PopulationFitResult:
    """Per-candidate outcome of a batched unitary fit.

    ``errors[p]`` is the relative Frobenius error of candidate ``p``
    against the target; ``fidelities[p]`` the normalized overlap (see
    :class:`repro.analysis.expressivity.FitResult`).  ``ranking`` sorts
    candidates best-first.
    """

    errors: np.ndarray  # (P,)
    fidelities: np.ndarray  # (P,)
    history: List[np.ndarray] = field(default_factory=list)

    @property
    def ranking(self) -> np.ndarray:
        """Candidate indices sorted by ascending fit error."""
        return np.argsort(self.errors)

    @property
    def best(self) -> int:
        return int(self.ranking[0])


class TopologyPopulation:
    """Depth-padded stack of P same-K topologies for batched builds.

    Parameters
    ----------
    topologies: sequence of :class:`repro.core.topology.PTCTopology`
        (or any object with ``k`` and ``blocks_u``/``blocks_v``).
    side: which unitary's blocks to stack (``"u"`` or ``"v"``).
    exec_backend: execution backend for the fused cascade (None =
        process-wide default).  Forward-only scoring sweeps can pass
        ``"numpy-c64"`` to halve the memory traffic of large
        populations.
    """

    def __init__(self, topologies: Sequence, side: str = "u", exec_backend=None):
        if not topologies:
            raise ValueError("population must contain at least one topology")
        if side not in ("u", "v"):
            raise ValueError("side must be 'u' or 'v'")
        self.exec_backend = exec_backend
        ks = {t.k for t in topologies}
        if len(ks) != 1:
            raise ValueError(f"all topologies must share K, got {sorted(ks)}")
        self.k = ks.pop()
        self.side = side
        self.topologies = list(topologies)
        self.n_candidates = len(self.topologies)
        block_lists = [
            (t.blocks_u if side == "u" else t.blocks_v) for t in self.topologies
        ]
        self.block_counts = np.array([len(bl) for bl in block_lists])
        self.n_blocks = int(self.block_counts.max()) if len(block_lists) else 0
        k = self.k
        consts = np.broadcast_to(
            np.eye(k, dtype=complex),
            (self.n_candidates, self.n_blocks, k, k),
        ).copy()
        mask = np.zeros((self.n_candidates, self.n_blocks))
        for p, blocks in enumerate(block_lists):
            for b, spec in enumerate(blocks):
                consts[p, b] = block_constant_matrix(
                    k, spec.perm, spec.coupler_mask, spec.offset
                )
                mask[p, b] = 1.0
        self.consts = consts  # (P, B, K, K)
        self.exec_mask = mask  # (P, B), 1 = real block, 0 = padding

    def make_phases(self, rng=None) -> Parameter:
        """Fresh phase bank covering the whole population, (P, B, K)."""
        rng = get_rng(rng)
        return Parameter(
            rng.uniform(
                0.0, 2.0 * math.pi, size=(self.n_candidates, self.n_blocks, self.k)
            )
        )

    def transfer(self, phases: Tensor, exec_backend=None) -> Tensor:
        """All candidate unitaries from one phase bank, (P, K, K).

        A single fused cascade over the padded stack; padded blocks are
        exact skips, so ``transfer(...)[p]`` equals the unpadded build
        of candidate ``p``.  ``exec_backend`` overrides the population's
        configured execution backend for this call (forward-only lanes
        apply only when no gradient is being recorded).
        """
        ps = T.exp(T.mul(Tensor(np.array(-1j)), phases))
        return phase_column_cascade(
            Tensor(self.consts),
            ps,
            Tensor(self.exec_mask),
            backend=exec_backend if exec_backend is not None else self.exec_backend,
        )


def fit_unitary_population(
    topologies: Sequence,
    target: np.ndarray,
    side: str = "u",
    steps: int = 300,
    lr: float = 0.05,
    record_every: int = 25,
    output_phases: bool = True,
    rng=None,
    exec_backend=None,
) -> PopulationFitResult:
    """Jointly gradient-fit every candidate's phases to ``target``.

    The per-candidate losses are independent (the total loss is their
    sum), so one Adam run over the stacked parameters is exactly P
    independent fits — at the graph cost of one.

    ``target`` is a single (K, K) matrix shared by all candidates or a
    (P, K, K) stack of per-candidate targets.  ``exec_backend`` is
    forwarded to the population cascade (the fit itself records
    gradients, so forward-only lanes demote to their full-precision
    fallback during optimization).
    """
    pop = TopologyPopulation(topologies, side=side, exec_backend=exec_backend)
    rng = get_rng(rng)
    k, n_cand = pop.k, pop.n_candidates
    target = np.asarray(target, dtype=complex)
    if target.shape == (k, k):
        target = np.broadcast_to(target, (n_cand, k, k)).copy()
    if target.shape != (n_cand, k, k):
        raise ValueError(f"target must be ({k}, {k}) or ({n_cand}, {k}, {k})")
    t_target = Tensor(target)
    phases = pop.make_phases(rng=rng)
    params = [phases]
    psi: Optional[Parameter] = None
    if output_phases:
        psi = Parameter(rng.uniform(0.0, 2.0 * math.pi, size=(n_cand, k)))
        params.append(psi)
    opt = Adam(params, lr=lr)

    def realize() -> Tensor:
        u = pop.transfer(phases)
        if psi is None:
            return u
        screen = T.exp(T.mul(Tensor(np.array(-1j)), psi))
        return screen.reshape((n_cand, k, 1)) * u

    target_norms = np.linalg.norm(target, axis=(-2, -1))
    history: List[np.ndarray] = []
    for step in range(steps):
        opt.zero_grad()
        diff = realize() - t_target
        loss = (diff * diff.conj()).real().sum()
        loss.backward()
        opt.step()
        if step % record_every == 0:
            per = np.linalg.norm(diff.data, axis=(-2, -1)) / np.maximum(
                target_norms, 1e-30
            )
            history.append(per)
    u_final = realize().data
    diff = np.linalg.norm(u_final - target, axis=(-2, -1))
    errors = diff / np.maximum(target_norms, 1e-30)
    overlap = np.abs(
        np.trace(u_final @ np.conj(np.swapaxes(target, -1, -2)), axis1=-2, axis2=-1)
    )
    denom = np.linalg.norm(u_final, axis=(-2, -1)) * target_norms
    fidelities = overlap / np.maximum(denom, 1e-30)
    history.append(errors)
    return PopulationFitResult(
        errors=errors, fidelities=fidelities, history=history
    )
