"""Butterfly (FFT-ONN) mesh analysis helpers.

The FFT-ONN baseline [Gu et al., ASP-DAC 2020 / TCAD 2020] restricts
the transform to a log-depth butterfly.  The trainable-transform
variant used in the paper's comparison keeps the butterfly *structure*
(stride-2^s coupler stages) but trains all phase shifters freely.

This module provides numpy mirrors of the differentiable
:class:`repro.ptc.unitary.ButterflyFactory` for verification, plus the
restriction analysis used in tests: a butterfly mesh spans only a
measure-zero subgroup of U(K), which is why the paper observes reduced
expressivity at larger K (Table 1, 32x32).
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from ..photonics.devices import T_5050


def butterfly_stage_matrix(k: int, stage: int) -> np.ndarray:
    """Constant 50:50 coupling matrix of stage ``stage`` (stride 2^stage)."""
    stride = 2 ** stage
    if 2 * stride > k:
        raise ValueError(f"stage {stage} invalid for size {k}")
    t = T_5050
    js = 1j * math.sqrt(1.0 - t * t)
    # Waveguide i pairs with i + stride when the stride-bit of i is 0.
    idx = np.arange(k)
    lo = idx[(idx & stride) == 0]
    hi = lo + stride
    mat = np.zeros((k, k), dtype=complex)
    mat[idx, idx] = t
    mat[lo, hi] = js
    mat[hi, lo] = js
    return mat


def butterfly_transfer_np(phases: np.ndarray) -> np.ndarray:
    """Numpy reference transfer of a butterfly mesh.

    ``phases`` has shape (stages, K); stage s applies diag(e^{-j phi_s})
    then the stride-2^s coupling, mirroring ``ButterflyFactory.build``.
    """
    stages, k = phases.shape
    if 2 ** stages != k:
        raise ValueError("phases must have shape (log2(K), K)")
    u = np.eye(k, dtype=complex)
    for s in range(stages):
        u = butterfly_stage_matrix(k, s) @ (np.exp(-1j * phases[s])[:, None] * u)
    return u


def n_free_parameters(k: int) -> int:
    """Trainable phases of one butterfly mesh: K log2(K)."""
    return k * int(math.log2(k))


def unitary_dim(k: int) -> int:
    """Real dimension of U(K): K^2 (the butterfly spans far fewer)."""
    return k * k


def dft_matrix(k: int) -> np.ndarray:
    """Unitary DFT matrix (the namesake transform of FFT-ONN)."""
    idx = np.arange(k)
    w = np.exp(-2j * math.pi * np.outer(idx, idx) / k)
    return w / math.sqrt(k)
