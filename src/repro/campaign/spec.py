"""Campaign declaration and deterministic matrix expansion.

A :class:`CampaignSpec` is pure data: every field survives a lossless
JSON round-trip (enforced by :meth:`CampaignSpec.validate`), so the
spec itself can be content-addressed with the same blake2b scheme the
design service uses for jobs.  :func:`expand` turns the spec into an
ordered list of :class:`CampaignCell`\\ s; both the ordering and every
cell id are pure functions of the spec — independent of process,
worker count, and ``PYTHONHASHSEED`` — which is what makes campaign
artifacts reproducible byte-for-byte anywhere.
"""

from __future__ import annotations

import itertools
import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Union

from ..utils.serialization import atomic_write_text, canonical_json_dumps, json_digest

__all__ = ["ARTIFACT_KINDS", "CampaignCell", "CampaignSpec", "expand"]

#: Artifact formats :func:`repro.campaign.write_artifacts` can emit.
ARTIFACT_KINDS = ("csv", "markdown", "plot")

_SCALAR_TYPES = (str, int, float, bool)


@dataclass
class CampaignSpec:
    """One declarative experiment matrix.

    ``kind`` names a registered cell runner (see
    :mod:`repro.campaign.runners`); ``axes`` maps axis names to the
    scalar values they sweep (value order is preserved — it defines
    cell order); ``base`` holds parameters shared by every cell;
    ``exclude`` lists coordinate patterns to drop (a cell is excluded
    when *all* items of any pattern equal its coordinates).
    """

    name: str
    kind: str
    axes: Dict[str, List] = field(default_factory=dict)
    base: dict = field(default_factory=dict)
    exclude: List[dict] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=lambda: list(ARTIFACT_KINDS))
    version: int = 1

    # -- identity ------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "kind": self.kind,
            "axes": {k: list(v) for k, v in self.axes.items()},
            "base": dict(self.base),
            "exclude": [dict(e) for e in self.exclude],
            "artifacts": list(self.artifacts),
            "version": int(self.version),
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "CampaignSpec":
        unknown = set(payload) - {
            "name", "kind", "axes", "base", "exclude", "artifacts", "version",
        }
        if unknown:
            raise ValueError(f"unknown campaign spec fields {sorted(unknown)}")
        for req in ("name", "kind"):
            if req not in payload:
                raise ValueError(f"campaign spec is missing {req!r}")
        return cls(
            name=payload["name"],
            kind=payload["kind"],
            axes={k: list(v) for k, v in payload.get("axes", {}).items()},
            base=dict(payload.get("base", {})),
            exclude=[dict(e) for e in payload.get("exclude", [])],
            artifacts=list(payload.get("artifacts", ARTIFACT_KINDS)),
            version=int(payload.get("version", 1)),
        )

    def to_json(self) -> str:
        """Canonical JSON — the hashed identity of the campaign."""
        return canonical_json_dumps(self.to_dict())

    @classmethod
    def from_json(cls, text: str) -> "CampaignSpec":
        payload = json.loads(text)
        if not isinstance(payload, dict):
            raise ValueError("campaign spec JSON must be an object")
        return cls.from_dict(payload)

    @property
    def campaign_id(self) -> str:
        """Content address: equal specs always share one id."""
        return json_digest(self.to_dict())

    # -- persistence ---------------------------------------------------

    def save(self, path: Union[str, Path]) -> None:
        """Write the spec as pretty JSON (atomically)."""
        atomic_write_text(
            path, json.dumps(self.to_dict(), indent=2, sort_keys=True) + "\n"
        )

    @classmethod
    def load(cls, path: Union[str, Path]) -> "CampaignSpec":
        return cls.from_json(Path(path).read_text())

    # -- validation ----------------------------------------------------

    def validate(self) -> "CampaignSpec":
        """Check the declaration is well-formed and reproducible.

        Axis values must be JSON scalars (cell coordinates have to be
        hashable content and valid exclude targets), unique per axis,
        and disjoint from ``base`` keys; the whole payload must survive
        a JSON round-trip so the campaign id is well-defined.
        """
        if not self.name:
            raise ValueError("campaign needs a non-empty name")
        if not self.axes:
            raise ValueError("campaign needs at least one axis")
        for axis, values in self.axes.items():
            if not values:
                raise ValueError(f"axis {axis!r} has no values")
            for v in values:
                if not isinstance(v, _SCALAR_TYPES):
                    raise ValueError(
                        f"axis {axis!r} value {v!r} is not a JSON scalar; "
                        "put structured values in `base` and sweep a "
                        "selector key (see docs/CAMPAIGNS.md)"
                    )
            if len(set(values)) != len(values):
                raise ValueError(f"axis {axis!r} repeats a value")
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise ValueError(
                f"keys {sorted(overlap)} appear in both axes and base"
            )
        for pattern in self.exclude:
            if not pattern:
                raise ValueError("empty exclude pattern would drop every cell")
            bad = set(pattern) - set(self.axes)
            if bad:
                raise ValueError(
                    f"exclude pattern keys {sorted(bad)} are not axes"
                )
        unknown = set(self.artifacts) - set(ARTIFACT_KINDS)
        if unknown:
            raise ValueError(
                f"unknown artifacts {sorted(unknown)}; "
                f"available: {list(ARTIFACT_KINDS)}"
            )
        decoded = json.loads(self.to_json())
        if decoded != self.to_dict():
            raise ValueError(
                "campaign spec does not survive a JSON round-trip; use "
                "only JSON-native types (dict/list/str/int/float/bool/None)"
            )
        from .runners import get_runner

        get_runner(self.kind)  # raises on unknown kind
        if not expand(self):
            raise ValueError("exclude patterns drop every cell")
        return self


@dataclass(frozen=True)
class CampaignCell:
    """One point of the expanded matrix.

    ``coords`` are this cell's axis values; ``params`` is the full
    runner payload (``base`` merged with ``coords``); ``cell_id`` is
    the blake2b content address of ``(campaign, cell params)``.
    """

    index: int
    cell_id: str
    coords: dict
    params: dict


def expand(spec: CampaignSpec) -> List[CampaignCell]:
    """Deterministically enumerate the campaign matrix.

    Axes iterate in sorted-name order with the last-sorted axis
    fastest; values within an axis keep their declared order.  Cells
    matching an exclude pattern are dropped, and the surviving cells
    are numbered densely — so cell index, id, and order depend only on
    the spec content.
    """
    names = sorted(spec.axes)
    cells: List[CampaignCell] = []
    for values in itertools.product(*(spec.axes[n] for n in names)):
        coords = dict(zip(names, values))
        if any(
            all(coords.get(k) == v for k, v in pattern.items())
            for pattern in spec.exclude
        ):
            continue
        params = dict(spec.base)
        params.update(coords)
        cell_id = json_digest({"campaign": spec.campaign_id, "cell": params})
        cells.append(
            CampaignCell(
                index=len(cells), cell_id=cell_id, coords=coords, params=params
            )
        )
    return cells
