"""Campaign aggregation and artifact emission.

The report layer is pure presentation: :func:`aggregate` folds the
cell results into one flat table (in cell order, so the bytes are
reproducible), and the renderers delegate to the consolidated
table/CSV writers in :mod:`repro.experiments.report` — the same
writers the legacy tables print through.  :func:`write_artifacts`
publishes everything with atomic writes.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from ..utils.serialization import atomic_write_text, canonical_json_dumps
from .executor import CampaignRun
from .runners import get_runner
from .spec import CampaignSpec

__all__ = [
    "CampaignReport",
    "aggregate",
    "report_csv",
    "report_markdown",
    "report_plot",
    "write_artifacts",
]


@dataclass
class CampaignReport:
    """The flat result table of one executed campaign."""

    spec: CampaignSpec
    columns: List[str]
    rows: List[dict]


def aggregate(run: CampaignRun) -> CampaignReport:
    """Fold cell results into the campaign's report table."""
    runner = get_runner(run.spec.kind)
    rows: List[dict] = []
    for cell, result in zip(run.cells, run.results):
        rows.extend(runner.rows(cell.coords, result))
    return CampaignReport(spec=run.spec, columns=list(runner.columns),
                          rows=rows)


def report_csv(report: CampaignReport) -> str:
    from ..experiments.report import rows_to_csv

    return rows_to_csv(report.columns, report.rows)


def report_markdown(report: CampaignReport) -> str:
    from ..experiments.report import rows_to_markdown

    title = f"campaign {report.spec.name} ({report.spec.kind})"
    return rows_to_markdown(report.columns, report.rows, title=title)


def report_plot(report: CampaignReport) -> Optional[str]:
    """Ascii rendering of the report, if the kind declares one."""
    runner = get_runner(report.spec.kind)
    if runner.plot is None or not report.rows:
        return None
    return runner.plot(report.rows)


def write_artifacts(run: CampaignRun, out_dir: Union[str, Path]) -> List[Path]:
    """Publish the campaign's artifacts under ``out_dir``.

    Always writes ``campaign.json`` (the canonical spec) and
    ``result.json`` (the canonical cell results); the spec's
    ``artifacts`` list selects ``cells.csv``, ``report.md``, and
    ``plot.txt`` on top.  Every file is written atomically and the
    bytes depend only on the spec — reproducible across processes and
    worker counts.
    """
    out_dir = Path(out_dir)
    out_dir.mkdir(parents=True, exist_ok=True)
    report = aggregate(run)
    written: List[Path] = []

    def emit(name: str, text: str) -> None:
        path = out_dir / name
        atomic_write_text(path, text)
        written.append(path)

    emit("campaign.json", run.spec.to_json() + "\n")
    emit("result.json", canonical_json_dumps(run.to_dict()) + "\n")
    if "csv" in run.spec.artifacts:
        emit("cells.csv", report_csv(report))
    if "markdown" in run.spec.artifacts:
        emit("report.md", report_markdown(report) + "\n")
    if "plot" in run.spec.artifacts:
        plot = report_plot(report)
        if plot is not None:
            emit("plot.txt", plot + "\n")
    return written
