"""Cell-runner registry: what one campaign cell computes.

Mirrors the job-kind registry in :mod:`repro.service.jobs`: each
campaign ``kind`` registers a :class:`CellRunner` whose functions are
pure — ``run`` maps a JSON-native params dict to a JSON-native result
(all randomness from in-params seeds), and ``rows`` maps one cell's
``(coords, result)`` to the tabular report rows it contributes.
Builtin runners live in :mod:`repro.campaign.builtin` and register
themselves on (lazy) import, keeping ``import repro.campaign`` free of
experiment-layer dependencies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

__all__ = [
    "CellRunner",
    "available_runners",
    "get_runner",
    "register_runner",
]


@dataclass(frozen=True)
class CellRunner:
    """A registered campaign kind.

    ``columns`` declares the report schema; ``rows(coords, result)``
    returns one dict per report row (a cell may contribute several,
    e.g. one per noise level).  ``plot(rows)`` optionally renders the
    full report as an ascii figure (:mod:`repro.utils.ascii_plot`).
    """

    kind: str
    run: Callable[[dict], dict]
    columns: Tuple[str, ...]
    rows: Callable[[dict, dict], List[dict]]
    plot: Optional[Callable[[List[dict]], str]] = None
    description: str = ""


_REGISTRY: Dict[str, CellRunner] = {}


def register_runner(runner: CellRunner) -> CellRunner:
    """Register (or replace) a campaign kind; returns the runner."""
    _REGISTRY[runner.kind] = runner
    return runner


def get_runner(kind: str) -> CellRunner:
    _ensure_builtin_runners()
    try:
        return _REGISTRY[kind]
    except KeyError:
        raise KeyError(
            f"unknown campaign kind {kind!r}; available: {available_runners()}"
        ) from None


def available_runners() -> List[str]:
    _ensure_builtin_runners()
    return sorted(_REGISTRY)


def _ensure_builtin_runners() -> None:
    # Builtin runners register themselves on import; imported lazily so
    # `import repro.campaign` stays cheap (same pattern as
    # service/jobs.py's _ensure_builtin_handlers).
    from . import builtin  # noqa: F401
