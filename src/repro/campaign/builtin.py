"""Builtin campaign kinds — one per experiment family.

Each runner delegates to the per-cell unit the experiment modules
already expose (``mesh_noise_curve``, ``alm_scan_point``,
``*_cell`` in :mod:`repro.experiments.extensions`), so the campaign
engine and the legacy entry points execute the *same* science code and
agree byte-for-byte at a fixed seed (pinned by
``tests/campaign/test_campaign_parity.py``).  Heavy experiment imports happen
inside ``run`` so importing the registry stays cheap.

Kinds
-----
``fig4-noise``
    Paper Fig. 4: variation-aware-train one mesh, sweep inference
    phase noise.  Axis: ``mesh`` (a name resolved through the
    ``meshes`` map in ``base``).
``alm-scan`` / ``penalty-scan``
    Paper Fig. 5(a)/(b) ablation scans.  Axis: ``rho0`` / ``beta``.
``expressivity`` / ``quantization`` / ``power`` / ``nonideality`` /
``search-ablation``
    The extension studies of :mod:`repro.experiments.extensions`.
"""

from __future__ import annotations

from typing import List

from .runners import CellRunner, register_runner

__all__: List[str] = []


def _params(params: dict, defaults: dict) -> dict:
    """Defaults-merged params, rejecting unknown keys (the same
    contract as the service handlers' ``_with_defaults``)."""
    unknown = set(params) - set(defaults)
    if unknown:
        raise ValueError(f"unknown params {sorted(unknown)}; "
                         f"expected a subset of {sorted(defaults)}")
    merged = dict(defaults)
    merged.update(params)
    return merged


def _require(p: dict, *keys: str) -> None:
    for key in keys:
        if p[key] is None:
            raise ValueError(f"campaign cell requires params[{key!r}]")


def _bar(rows: List[dict], label_key: str, value_key: str, title: str,
         unit: str = "") -> str:
    from ..utils.ascii_plot import bar_chart

    return bar_chart([str(r[label_key]) for r in rows],
                     [float(r[value_key]) for r in rows],
                     title=title, unit=unit)


# ----------------------------------------------------------------------
# fig4-noise: one mesh trained once, noise sweep inside the cell
# ----------------------------------------------------------------------
#
# noise_std deliberately lives *inside* the cell rather than on an
# axis: the legacy Fig. 4 unit trains one model per mesh and sweeps
# noise over that same model, so a per-sigma cell would retrain per
# sigma and change the numbers.  The report still carries one row per
# (mesh, sigma).

_FIG4_DEFAULTS = {
    "mesh": None,                # axis: mesh name, resolved via `meshes`
    "meshes": None,              # {name: "mzi"|"butterfly"|topology dict}
    "part": "a",
    "k": 16,
    "scale": None,               # ExperimentScale field overrides
    "noise_stds": [0.02, 0.04, 0.06, 0.08, 0.10],
    "backend": "fast",
}


def _fig4_run(params: dict) -> dict:
    from ..experiments.common import ExperimentScale
    from ..experiments.fig4 import mesh_noise_curve
    from ..service.handlers import resolve_mesh

    p = _params(params, _FIG4_DEFAULTS)
    _require(p, "mesh", "meshes")
    if p["mesh"] not in p["meshes"]:
        raise ValueError(f"mesh {p['mesh']!r} has no entry in params['meshes']")
    curve = mesh_noise_curve(
        p["part"], p["mesh"], resolve_mesh(p["meshes"][p["mesh"]]),
        int(p["k"]), ExperimentScale(**(p["scale"] or {})),
        [float(s) for s in p["noise_stds"]], p["backend"],
    )
    return {"curve": [[float(v) for v in point] for point in curve]}


def _fig4_rows(coords: dict, result: dict) -> List[dict]:
    return [
        {"mesh": coords["mesh"], "noise_std": s, "mean_acc_percent": m,
         "std_acc_percent": sd}
        for s, m, sd in result["curve"]
    ]


def _fig4_plot(rows: List[dict]) -> str:
    from ..utils.ascii_plot import line_plot

    series = {}
    for r in rows:
        xs, ys = series.setdefault(r["mesh"], ([], []))
        xs.append(r["noise_std"])
        ys.append(r["mean_acc_percent"])
    return line_plot(series, title="mean accuracy (%) vs phase-noise sigma",
                     x_label="noise_std")


register_runner(CellRunner(
    kind="fig4-noise",
    run=_fig4_run,
    columns=("mesh", "noise_std", "mean_acc_percent", "std_acc_percent"),
    rows=_fig4_rows,
    plot=_fig4_plot,
    description="Fig. 4 noise-robustness curve, one cell per mesh",
))


# ----------------------------------------------------------------------
# alm-scan / penalty-scan: Fig. 5 ablations, one cell per scan point
# ----------------------------------------------------------------------

_ALM_DEFAULTS = {
    "rho0": None,                # axis
    "k": 8,
    "n_blocks": 6,
    "steps": 600,
    "seed": 0,
}


def _alm_run(params: dict) -> dict:
    from ..experiments.fig5 import alm_scan_point

    p = _params(params, _ALM_DEFAULTS)
    _require(p, "rho0")
    trace = alm_scan_point(float(p["rho0"]), k=int(p["k"]),
                           n_blocks=int(p["n_blocks"]), steps=int(p["steps"]),
                           seed=int(p["seed"]))
    return {
        "perm_error": [float(v) for v in trace.perm_error],
        "mean_lambda": [float(v) for v in trace.mean_lambda],
    }


def _alm_rows(coords: dict, result: dict) -> List[dict]:
    return [{
        "rho0": coords["rho0"],
        "perm_error_first": result["perm_error"][0],
        "perm_error_final": result["perm_error"][-1],
        "lambda_final": result["mean_lambda"][-1],
    }]


register_runner(CellRunner(
    kind="alm-scan",
    run=_alm_run,
    columns=("rho0", "perm_error_first", "perm_error_final", "lambda_final"),
    rows=_alm_rows,
    plot=lambda rows: _bar(rows, "rho0", "perm_error_final",
                           title="final permutation error vs rho0"),
    description="Fig. 5(a) ALM rho0 scan, one cell per rho0",
))


_PENALTY_DEFAULTS = {
    "beta": None,                # axis
    "k": 8,
    "window_kum2": [240.0, 300.0],
    "steps": 150,
    "seed": 0,
}


def _penalty_run(params: dict) -> dict:
    from ..experiments.fig5 import penalty_scan_point

    p = _params(params, _PENALTY_DEFAULTS)
    _require(p, "beta")
    lo, hi = p["window_kum2"]
    trace = penalty_scan_point(float(p["beta"]), k=int(p["k"]),
                               window_kum2=(float(lo), float(hi)),
                               steps=int(p["steps"]), seed=int(p["seed"]))
    return {
        "expected_footprint": [float(v) for v in trace.expected_footprint],
        "penalty_over_beta": [float(v) for v in trace.penalty_over_beta],
        "window": [float(w) for w in trace.window],
    }


def _penalty_rows(coords: dict, result: dict) -> List[dict]:
    lo, hi = result["window"]
    final = result["expected_footprint"][-1]
    return [{
        "beta": coords["beta"],
        "ef_first": result["expected_footprint"][0],
        "ef_final": final,
        "in_window": lo <= final <= hi,
    }]


register_runner(CellRunner(
    kind="penalty-scan",
    run=_penalty_run,
    columns=("beta", "ef_first", "ef_final", "in_window"),
    rows=_penalty_rows,
    plot=lambda rows: _bar(rows, "beta", "ef_final",
                           title="final E[F] (um^2) vs beta"),
    description="Fig. 5(b) footprint-penalty beta scan, one cell per beta",
))


# ----------------------------------------------------------------------
# extension studies
# ----------------------------------------------------------------------

_EXPRESSIVITY_DEFAULTS = {
    "design": None,              # axis: mzi | fft | adept-a1 | adept-a5
    "k": 8,
    "pdk": "amf",
    "steps": 400,
    "n_targets": 2,
    "seed": 0,
}


def _expressivity_run(params: dict) -> dict:
    from ..experiments.extensions import expressivity_cell

    p = _params(params, _EXPRESSIVITY_DEFAULTS)
    _require(p, "design")
    return expressivity_cell(p["design"], k=int(p["k"]), pdk=p["pdk"],
                             steps=int(p["steps"]),
                             n_targets=int(p["n_targets"]), seed=int(p["seed"]))


register_runner(CellRunner(
    kind="expressivity",
    run=_expressivity_run,
    columns=("design", "error", "fidelity", "footprint_kum2"),
    rows=lambda coords, result: [{"design": coords["design"], **result}],
    plot=lambda rows: _bar(rows, "design", "error",
                           title="unitary-fit error per design"),
    description="unitary-fit expressivity per PTC family, one cell per design",
))


_QUANTIZATION_DEFAULTS = {
    "bits": None,                # axis
    "k": 8,
    "steps": 400,
    "seed": 0,
}


def _quantization_run(params: dict) -> dict:
    from ..experiments.extensions import quantization_cell

    p = _params(params, _QUANTIZATION_DEFAULTS)
    _require(p, "bits")
    return quantization_cell(int(p["bits"]), k=int(p["k"]),
                             steps=int(p["steps"]), seed=int(p["seed"]))


def _quantization_plot(rows: List[dict]) -> str:
    from ..utils.ascii_plot import line_plot

    bits = [float(r["bits"]) for r in rows]
    return line_plot(
        {"ptq": (bits, [float(r["ptq_error"]) for r in rows]),
         "qat": (bits, [float(r["qat_error"]) for r in rows])},
        title="fit error vs phase bit width", x_label="bits",
    )


register_runner(CellRunner(
    kind="quantization",
    run=_quantization_run,
    columns=("bits", "full_precision_error", "ptq_error", "qat_error"),
    rows=lambda coords, result: [{"bits": coords["bits"], **result}],
    plot=_quantization_plot,
    description="PTQ vs QAT low-bit phase control, one cell per bit width",
))


_POWER_DEFAULTS = {
    "design": None,              # axis: mzi | fft | adept
    "k": 8,
    "pdk": "amf",
    "window_kum2": [240.0, 300.0],
    "seed": 0,
}


def _power_run(params: dict) -> dict:
    from ..experiments.extensions import power_cell

    p = _params(params, _POWER_DEFAULTS)
    _require(p, "design")
    lo, hi = p["window_kum2"]
    return power_cell(p["design"], k=int(p["k"]), pdk=p["pdk"],
                      window_kum2=(float(lo), float(hi)), seed=int(p["seed"]))


register_runner(CellRunner(
    kind="power",
    run=_power_run,
    columns=("design", "total_power_mw", "latency_ps", "energy_per_mac_fj",
             "worst_loss_db"),
    rows=lambda coords, result: [{"design": coords["design"], **result}],
    plot=lambda rows: _bar(rows, "design", "total_power_mw",
                           title="electrical power per design", unit=" mW"),
    description="link-budget power/latency per design, one cell per design",
))


_NONIDEALITY_DEFAULTS = {
    "nonideality": None,         # axis: phase-noise | insertion-loss | ...
    "k": 8,
    "shallow_blocks": 3,
    "deep_blocks": 16,
    "n_trials": 8,
    "seed": 0,
}


def _nonideality_run(params: dict) -> dict:
    from ..experiments.extensions import nonideality_cell

    p = _params(params, _NONIDEALITY_DEFAULTS)
    _require(p, "nonideality")
    return nonideality_cell(p["nonideality"], k=int(p["k"]),
                            shallow_blocks=int(p["shallow_blocks"]),
                            deep_blocks=int(p["deep_blocks"]),
                            n_trials=int(p["n_trials"]), seed=int(p["seed"]))


register_runner(CellRunner(
    kind="nonideality",
    run=_nonideality_run,
    columns=("nonideality", "shallow_fidelity", "deep_fidelity"),
    rows=lambda coords, result: [
        {"nonideality": coords["nonideality"], **result}
    ],
    plot=lambda rows: _bar(rows, "nonideality", "deep_fidelity",
                           title="deep-mesh fidelity per nonideality"),
    description="shallow vs deep fidelity, one cell per nonideality",
))


_SEARCH_ABLATION_DEFAULTS = {
    "method": None,              # axis: adept | random | evolutionary
    "k": 8,
    "pdk": "amf",
    "window_kum2": [240.0, 300.0],
    "budget": 12,
    "scale": None,               # ExperimentScale field overrides
    "seed": 0,
}


def _search_ablation_run(params: dict) -> dict:
    from ..experiments.extensions import search_method_cell

    p = _params(params, _SEARCH_ABLATION_DEFAULTS)
    _require(p, "method")
    lo, hi = p["window_kum2"]
    return search_method_cell(p["method"], k=int(p["k"]), pdk=p["pdk"],
                              window_kum2=(float(lo), float(hi)),
                              budget=int(p["budget"]), scale=p["scale"],
                              seed=int(p["seed"]))


register_runner(CellRunner(
    kind="search-ablation",
    run=_search_ablation_run,
    columns=("method", "score", "footprint_um2", "feasible"),
    rows=lambda coords, result: [{
        "method": coords["method"],
        "score": result["score"],
        "footprint_um2": result["footprint_um2"],
        "feasible": result["feasible"],
    }],
    plot=lambda rows: _bar(rows, "method", "score",
                           title="expressivity score per search method"),
    description="ADEPT vs black-box search, one cell per method",
))
