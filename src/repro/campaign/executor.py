"""Campaign execution: inline loop or service-sharded pool.

Both routes produce the same :class:`CampaignRun` — cell results in
cell-index order — because cells are pure functions of their params
and the decomposition is pure data.  The service route submits one
``campaign`` job (one shard per cell) into the persistent queue of
:mod:`repro.service`, inheriting its crash recovery: a SIGKILLed
worker's shard lease expires and another worker re-runs the cell,
with byte-identical aggregate artifacts (pinned by
``tests/campaign/test_campaign_resume.py``).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Union

from .runners import get_runner
from .spec import CampaignCell, CampaignSpec, expand

__all__ = ["CampaignRun", "campaign_job_params", "run_campaign",
           "run_from_job_result"]


@dataclass
class CampaignRun:
    """An executed campaign: cells and their results, in cell order."""

    spec: CampaignSpec
    cells: List[CampaignCell]
    results: List[dict]

    def result_for(self, **coords) -> dict:
        """The result of the cell with exactly these coordinates."""
        for cell, result in zip(self.cells, self.results):
            if cell.coords == coords:
                return result
        raise KeyError(f"no cell with coords {coords!r}")

    def to_dict(self) -> dict:
        """JSON-native payload — the canonical result artifact."""
        return {
            "campaign_id": self.spec.campaign_id,
            "name": self.spec.name,
            "kind": self.spec.kind,
            "cells": [
                {"cell_id": c.cell_id, "coords": c.coords, "result": r}
                for c, r in zip(self.cells, self.results)
            ],
        }


def run_campaign(
    spec: CampaignSpec,
    n_workers: int = 0,
    root: Optional[Union[str, Path]] = None,
    cache_dir: Optional[Union[str, Path]] = None,
    timeout: Optional[float] = None,
) -> CampaignRun:
    """Execute every cell of ``spec`` and return the ordered results.

    With ``root=None`` the cells run inline in this process;
    ``cache_dir`` optionally scopes the shared on-disk unitary cache
    (:mod:`repro.ptc.cache`) to the run so repeated builds are reused
    across cells (the previous setting is restored on exit).

    With a ``root`` the campaign is submitted to the design service
    rooted there as one ``campaign`` job and drained by a local pool
    of ``n_workers`` processes (``0`` = in-process worker); submission
    is idempotent and a partially finished campaign resumes instead of
    recomputing.  The service pool shares its own unitary cache under
    ``root/unitary-cache``.
    """
    spec.validate()
    if root is not None:
        return _run_via_service(spec, root, n_workers, timeout)

    runner = get_runner(spec.kind)
    cells = expand(spec)
    if cache_dir is None:
        results = [runner.run(cell.params) for cell in cells]
    else:
        from ..ptc.cache import set_unitary_cache_dir

        prev = set_unitary_cache_dir(cache_dir)
        try:
            results = [runner.run(cell.params) for cell in cells]
        finally:
            set_unitary_cache_dir(prev)
    return CampaignRun(spec=spec, cells=cells, results=results)


def campaign_job_params(spec: CampaignSpec) -> dict:
    """The ``campaign`` job-kind params for ``spec`` (also the route to
    its content-addressed job id via :class:`repro.service.JobSpec`)."""
    return {"spec": spec.to_dict()}


def run_from_job_result(spec: CampaignSpec, job_result: dict) -> CampaignRun:
    """Rebuild a :class:`CampaignRun` from a ``campaign`` job's result."""
    if job_result.get("campaign_id") != spec.campaign_id:
        raise ValueError(
            "job result does not belong to this campaign spec "
            f"(result campaign_id {job_result.get('campaign_id')!r}, "
            f"spec {spec.campaign_id!r})"
        )
    cells = expand(spec)
    by_id = {entry["cell_id"]: entry for entry in job_result["cells"]}
    results = []
    for cell in cells:
        if cell.cell_id not in by_id:
            raise ValueError(f"job result is missing cell {cell.cell_id}")
        results.append(by_id[cell.cell_id]["result"])
    return CampaignRun(spec=spec, cells=cells, results=results)


def _run_via_service(
    spec: CampaignSpec,
    root: Union[str, Path],
    n_workers: int,
    timeout: Optional[float],
) -> CampaignRun:
    from ..service import DesignService

    svc = DesignService(root)
    try:
        job_id = svc.submit("campaign", campaign_job_params(spec))
        svc.run(n_workers=n_workers, timeout=timeout)
        result = svc.result(job_id)
    finally:
        svc.close()
    return run_from_job_result(spec, result)
