"""Spec builders for the paper's sweeps and the extension studies.

One function per legacy entry point, returning the
:class:`CampaignSpec` that reproduces it byte-for-byte at the same
arguments.  The deprecated shims in :mod:`repro.experiments` call
these builders, and the checked-in configs under
``examples/campaigns/`` are their serialized output — so config, shim,
and engine can never drift apart (``tests/campaign/test_campaign_parity.py``
compares all three).
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, Optional, Sequence, Tuple

from .spec import CampaignSpec

__all__ = [
    "expressivity_spec",
    "fig4_spec",
    "fig5a_spec",
    "fig5b_spec",
    "nonideality_spec",
    "power_spec",
    "quantization_spec",
    "search_ablation_spec",
]

#: Nonideality cell names, in the legacy study's emission order.
NONIDEALITY_NAMES = (
    "phase-noise", "insertion-loss", "dc-imbalance", "crosstalk", "combined",
)


def _pdk_name(pdk) -> str:
    return pdk if isinstance(pdk, str) else pdk.name


def _mesh_value(mesh):
    """A mesh axis entry as JSON: builtin names pass through, a
    :class:`repro.core.PTCTopology` serializes to its dict form."""
    if isinstance(mesh, str):
        return mesh
    return json.loads(mesh.to_json())


def fig4_spec(
    part: str,
    topologies: Optional[Dict[str, object]] = None,
    k: int = 16,
    scale=None,
    noise_stds: Optional[Sequence[float]] = None,
    backend: str = "fast",
    name: Optional[str] = None,
) -> CampaignSpec:
    """The Fig. 4 noise sweep of one subfigure as a campaign."""
    from ..experiments.common import ExperimentScale
    from ..experiments.fig4 import NOISE_STDS

    scale = scale or ExperimentScale.from_env()
    if noise_stds is None:
        noise_stds = NOISE_STDS
    meshes = [("MZI", "mzi"), ("FFT", "butterfly")]
    meshes += list((topologies or {}).items())
    return CampaignSpec(
        name=name or f"fig4{part}-noise",
        kind="fig4-noise",
        axes={"mesh": [mesh_name for mesh_name, _ in meshes]},
        base={
            "part": part,
            "k": int(k),
            "meshes": {mesh_name: _mesh_value(m) for mesh_name, m in meshes},
            "scale": asdict(scale),
            "noise_stds": [float(s) for s in noise_stds],
            "backend": backend,
        },
    )


def fig5a_spec(
    k: int = 8,
    n_blocks: int = 6,
    steps: int = 600,
    rho0_values: Optional[Sequence[float]] = None,
    seed: int = 0,
    name: str = "fig5a-alm-scan",
) -> CampaignSpec:
    from ..experiments.fig5 import RHO0_VALUES

    if rho0_values is None:
        rho0_values = RHO0_VALUES
    return CampaignSpec(
        name=name,
        kind="alm-scan",
        axes={"rho0": [float(r) for r in rho0_values]},
        base={"k": int(k), "n_blocks": int(n_blocks), "steps": int(steps),
              "seed": int(seed)},
    )


def fig5b_spec(
    k: int = 8,
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    steps: int = 150,
    beta_values: Optional[Sequence[float]] = None,
    seed: int = 0,
    name: str = "fig5b-penalty-scan",
) -> CampaignSpec:
    from ..experiments.fig5 import BETA_VALUES

    if beta_values is None:
        beta_values = BETA_VALUES
    return CampaignSpec(
        name=name,
        kind="penalty-scan",
        axes={"beta": [float(b) for b in beta_values]},
        base={"k": int(k),
              "window_kum2": [float(window_kum2[0]), float(window_kum2[1])],
              "steps": int(steps), "seed": int(seed)},
    )


def expressivity_spec(
    k: int = 8,
    pdk="amf",
    steps: int = 400,
    n_targets: int = 2,
    seed: int = 0,
    name: str = "expressivity-comparison",
) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="expressivity",
        axes={"design": ["mzi", "fft", "adept-a1", "adept-a5"]},
        base={"k": int(k), "pdk": _pdk_name(pdk), "steps": int(steps),
              "n_targets": int(n_targets), "seed": int(seed)},
    )


def quantization_spec(
    k: int = 8,
    bit_widths: Sequence[int] = (6, 4, 3, 2),
    steps: int = 400,
    seed: int = 0,
    name: str = "quantization-study",
) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="quantization",
        axes={"bits": [int(b) for b in bit_widths]},
        base={"k": int(k), "steps": int(steps), "seed": int(seed)},
    )


def power_spec(
    k: int = 8,
    pdk="amf",
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    seed: int = 0,
    name: str = "power-comparison",
) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="power",
        axes={"design": ["mzi", "fft", "adept"]},
        base={"k": int(k), "pdk": _pdk_name(pdk),
              "window_kum2": [float(window_kum2[0]), float(window_kum2[1])],
              "seed": int(seed)},
    )


def nonideality_spec(
    k: int = 8,
    shallow_blocks: int = 3,
    deep_blocks: int = 16,
    n_trials: int = 8,
    seed: int = 0,
    name: str = "nonideality-study",
) -> CampaignSpec:
    return CampaignSpec(
        name=name,
        kind="nonideality",
        axes={"nonideality": list(NONIDEALITY_NAMES)},
        base={"k": int(k), "shallow_blocks": int(shallow_blocks),
              "deep_blocks": int(deep_blocks), "n_trials": int(n_trials),
              "seed": int(seed)},
    )


def search_ablation_spec(
    k: int = 8,
    pdk="amf",
    window_kum2: Tuple[float, float] = (240.0, 300.0),
    budget: int = 12,
    scale=None,
    seed: int = 0,
    name: str = "search-method-ablation",
) -> CampaignSpec:
    from ..experiments.common import ExperimentScale

    scale = scale or ExperimentScale()
    return CampaignSpec(
        name=name,
        kind="search-ablation",
        axes={"method": ["adept", "random", "evolutionary"]},
        base={"k": int(k), "pdk": _pdk_name(pdk),
              "window_kum2": [float(window_kum2[0]), float(window_kum2[1])],
              "budget": int(budget), "scale": asdict(scale), "seed": int(seed)},
    )
