"""Declarative experiment campaigns: one config-driven sweep engine.

A *campaign* is a JSON-serializable declaration of an experiment
matrix — a result *kind* (which cell runner computes one point), a set
of *axes* (named value lists whose cross product spans the matrix),
shared *base* parameters, and optional *excludes* — plus the artifact
formats the aggregate report should emit.  The engine:

* :class:`CampaignSpec` — the declaration, with a lossless dict/JSON
  round-trip through :func:`repro.utils.serialization.canonical_json_dumps`
  and a blake2b content address (``campaign_id``);
* :func:`expand` — deterministic enumeration of the matrix into
  content-addressed :class:`CampaignCell`\\ s (the ``service/jobs.py``
  id scheme applied per cell);
* :func:`run_campaign` — execute every cell inline, or sharded through
  the persistent design-service queue (kill-safe resume for free) via
  the ``campaign`` job kind;
* :func:`aggregate` / :func:`write_artifacts` — one tabular report per
  campaign, rendered to CSV / markdown / ascii plots through the
  consolidated writers in :mod:`repro.experiments.report`.

The legacy ``run_*_study`` entry points in
:mod:`repro.experiments.extensions` and the fig4/fig5 sweeps are thin
shims over this engine (see ``examples/campaigns/*.json`` and
``docs/CAMPAIGNS.md``); parity tests pin the shims byte-identical to
the pre-redesign loops.
"""

from .aggregate import CampaignReport, aggregate, report_csv, report_markdown, report_plot, write_artifacts
from .executor import CampaignRun, campaign_job_params, run_campaign, run_from_job_result
from .runners import CellRunner, available_runners, get_runner, register_runner
from .spec import CampaignCell, CampaignSpec, expand

__all__ = [
    "CampaignCell",
    "CampaignReport",
    "CampaignRun",
    "CampaignSpec",
    "CellRunner",
    "aggregate",
    "available_runners",
    "campaign_job_params",
    "expand",
    "get_runner",
    "register_runner",
    "report_csv",
    "report_markdown",
    "report_plot",
    "run_campaign",
    "run_from_job_result",
    "write_artifacts",
]
