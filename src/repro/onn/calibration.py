"""On-chip calibration: programming a fabricated mesh to a target.

After fabrication, a PTC's passive errors (coupler imbalance, loss —
see :mod:`repro.photonics.nonideality`) are frozen; only the phase
shifters remain programmable.  Deploying a weight matrix therefore
means *calibrating*: finding phase settings that realize the target as
closely as the nonideal hardware allows.  Two regimes:

* :func:`calibrate_adjoint` — gradient descent on a *digital twin*
  (the chip model is differentiable in software).  Fast, but only as
  good as the model.
* :func:`calibrate_spsa` — simultaneous-perturbation stochastic
  approximation: forward evaluations only, two per step, regardless
  of parameter count.  This is the standard hardware-in-the-loop
  protocol when the physical chip itself is the evaluator and no
  gradients exist.

Both minimize the relative Frobenius error to the target and report
the measurement count, the quantity that costs wall-clock time on a
real chip.

Measurement accounting
----------------------
``n_measurements`` counts **every** chip forward (``factory.build()``)
exactly once — the initial and final error reads, every per-
``record_every`` history point, and each optimization evaluation
(adjoint: one training forward per step; SPSA: two perturbed reads
plus one post-update read per step).  ``history`` starts at the
initial error and always ends at the final error, even when ``steps``
is not a multiple of ``record_every``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List

import numpy as np

from ..autograd import Tensor, no_grad
from ..optim import Adam
from ..ptc.unitary import UnitaryFactory
from ..utils.rng import get_rng

__all__ = [
    "CalibrationResult",
    "adjoint_measurement_count",
    "calibrate_adjoint",
    "calibrate_spsa",
    "spsa_measurement_count",
]


@dataclass
class CalibrationResult:
    """Outcome of a calibration run.

    ``n_measurements`` counts forward evaluations of the chip (the
    scarce resource in hardware-in-the-loop operation); ``history``
    records the relative error every few steps.
    """

    method: str
    initial_error: float
    final_error: float
    n_measurements: int
    history: List[float] = field(default_factory=list)

    @property
    def improvement(self) -> float:
        """Fraction of the initial error removed, in [0, 1]."""
        if self.initial_error <= 0:
            return 0.0
        return 1.0 - self.final_error / self.initial_error


def _relative_error(factory: UnitaryFactory, target: np.ndarray) -> float:
    with no_grad():
        u = factory.build().data[0]
    return float(np.linalg.norm(u - target) / np.linalg.norm(target))


def _check(factory: UnitaryFactory, target: np.ndarray) -> np.ndarray:
    if factory.n_units != 1:
        raise ValueError("calibration requires a factory with n_units == 1")
    target = np.asarray(target, dtype=complex)
    if target.shape != (factory.k, factory.k):
        raise ValueError(
            f"target must be {factory.k} x {factory.k}, got {target.shape}")
    return target


def _perturbed_error(factory: UnitaryFactory, target: np.ndarray,
                     params, deltas, sign: float) -> float:
    """Chip error with every phase vector perturbed by ``sign * delta``.

    The pre-call parameter bits are saved and restored from copies:
    ``(p + d) - d`` does **not** round-trip in floating point, so the
    perturb-then-subtract idiom silently accumulates rounding error in
    every phase on every call (the PR 8 SPSA state-drift bug).
    Restoration here is bitwise — pinned by a regression test.
    """
    saved = [p.data.copy() for p in params]
    try:
        for p, d in zip(params, deltas):
            p.data = p.data + sign * d
        return _relative_error(factory, target)
    finally:
        for p, s in zip(params, saved):
            p.data = s


def adjoint_measurement_count(steps: int, record_every: int = 10) -> int:
    """Chip forwards an adjoint run performs: the initial read, one
    training forward per step, one read per recorded history point,
    and the final read (skipped when a record point already measured
    the final state)."""
    if steps <= 0:
        return 1
    recorded = steps // record_every
    final = 0 if steps % record_every == 0 else 1
    return 1 + steps + recorded + final


def spsa_measurement_count(steps: int) -> int:
    """Chip forwards an SPSA run performs: the initial read plus, per
    step, two perturbed reads and one post-update read."""
    return 1 + 3 * max(0, steps)


def calibrate_adjoint(
    factory: UnitaryFactory,
    target: np.ndarray,
    steps: int = 200,
    lr: float = 0.02,
    record_every: int = 10,
) -> CalibrationResult:
    """Digital-twin calibration: Adam on the differentiable chip model.

    ``n_measurements`` counts every forward of the twin (see the
    module docstring): :func:`adjoint_measurement_count` is the closed
    form.
    """
    target = _check(factory, target)
    t = Tensor(target.reshape(1, factory.k, factory.k))
    n_meas = 0

    def measure() -> float:
        nonlocal n_meas
        n_meas += 1
        return _relative_error(factory, target)

    initial = measure()
    opt = Adam(factory.parameters(), lr=lr)
    history: List[float] = [initial]
    for step in range(steps):
        opt.zero_grad()
        u = factory.build()
        n_meas += 1
        loss = ((u - t) * (u - t).conj()).real().sum()
        loss.backward()
        opt.step()
        if (step + 1) % record_every == 0:
            history.append(measure())
    if steps > 0 and steps % record_every != 0:
        history.append(measure())
    final = history[-1]
    return CalibrationResult(method="adjoint", initial_error=initial,
                             final_error=final, n_measurements=n_meas,
                             history=history)


def calibrate_spsa(
    factory: UnitaryFactory,
    target: np.ndarray,
    steps: int = 800,
    a0: float = 3.0,
    c0: float = 0.2,
    stability: float = 20.0,
    record_every: int = 20,
    rng=None,
) -> CalibrationResult:
    """Hardware-in-the-loop calibration with SPSA (Spall 1992).

    Each step perturbs *all* phases simultaneously by a Rademacher
    vector and estimates the gradient from two chip measurements —
    the measurement cost is independent of the parameter count, which
    is what makes SPSA practical on real photonic hardware.

    The best-seen parameter vector is kept (SPSA iterates are noisy).
    ``n_measurements`` counts every chip forward
    (:func:`spsa_measurement_count` is the closed form); perturbation
    evaluations restore the pre-perturbation parameter bits exactly
    (see :func:`_perturbed_error`).
    """
    target = _check(factory, target)
    rng = get_rng(rng)
    params = list(factory.parameters())
    n_meas = 0

    def measure() -> float:
        nonlocal n_meas
        n_meas += 1
        return _relative_error(factory, target)

    initial = measure()
    best_err = initial
    best_state = [p.data.copy() for p in params]
    history: List[float] = [initial]

    for k in range(steps):
        a_k = a0 / (k + 1 + stability) ** 0.602
        c_k = c0 / (k + 1) ** 0.101
        deltas = [c_k * rng.choice([-1.0, 1.0], size=p.data.shape)
                  for p in params]
        loss_plus = _perturbed_error(factory, target, params, deltas, +1.0)
        loss_minus = _perturbed_error(factory, target, params, deltas, -1.0)
        n_meas += 2
        g_scale = (loss_plus - loss_minus) / (2.0 * c_k)
        for p, d in zip(params, deltas):
            # delta entries are +-c_k, so d / c_k is the Rademacher sign.
            p.data = p.data - a_k * g_scale * (d / c_k)
        err = measure()
        if err < best_err:
            best_err = err
            best_state = [p.data.copy() for p in params]
        if (k + 1) % record_every == 0:
            history.append(best_err)

    if steps > 0 and steps % record_every != 0:
        history.append(best_err)
    for p, data in zip(params, best_state):
        p.data = data
    return CalibrationResult(method="spsa", initial_error=initial,
                             final_error=best_err, n_measurements=n_meas,
                             history=history)
