"""Photonic ONN layers, model zoo, and training engine."""

from .calibration import CalibrationResult, calibrate_adjoint, calibrate_spsa
from .layers import (
    BlockUSV,
    FrozenPhotonicView,
    PTCConv2d,
    PTCLinear,
    model_ptc_footprint,
    photonic_cores,
    set_model_phase_noise,
)
from .models import MODEL_BUILDERS, build_cnn2, build_lenet5, build_model, build_vgg8
from .trainer import TrainConfig, TrainResult, evaluate, evaluate_population, train

__all__ = [
    "BlockUSV",
    "FrozenPhotonicView",
    "CalibrationResult",
    "calibrate_adjoint",
    "calibrate_spsa",
    "MODEL_BUILDERS",
    "PTCConv2d",
    "PTCLinear",
    "TrainConfig",
    "TrainResult",
    "build_cnn2",
    "build_lenet5",
    "build_model",
    "build_vgg8",
    "evaluate",
    "evaluate_population",
    "model_ptc_footprint",
    "photonic_cores",
    "set_model_phase_noise",
    "train",
]
