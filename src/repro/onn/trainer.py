"""Generic supervised training/evaluation loops for ONN models.

The same engine drives baseline training, ADEPT retraining, and
variation-aware training (by setting phase-noise injection on the
model's photonic cores before calling :func:`train`).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from ..autograd import Tensor, no_grad
from ..autograd.backend import backend_scope
from ..data import DataLoader, Dataset
from ..nn import CrossEntropyLoss, Module, accuracy
from ..optim import Adam, CosineAnnealingLR, clip_grad_norm_


@dataclass
class TrainConfig:
    """Hyper-parameters of a supervised training run."""

    epochs: int = 5
    batch_size: int = 64
    lr: float = 1e-3
    weight_decay: float = 1e-4
    grad_clip: float = 5.0
    cosine_lr: bool = True
    log_every: int = 0  # batches; 0 silences per-batch logs
    verbose: bool = False


@dataclass
class TrainResult:
    """Outcome of a training run."""

    train_losses: List[float] = field(default_factory=list)
    train_accs: List[float] = field(default_factory=list)
    test_accs: List[float] = field(default_factory=list)
    seconds: float = 0.0

    @property
    def final_test_acc(self) -> float:
        return self.test_accs[-1] if self.test_accs else float("nan")

    @property
    def best_test_acc(self) -> float:
        return max(self.test_accs) if self.test_accs else float("nan")


def evaluate(
    model: Module,
    dataset: Dataset,
    batch_size: int = 256,
    exec_backend=None,
) -> float:
    """Top-1 accuracy of ``model`` on ``dataset`` (eval mode, no grad).

    Runs under ``no_grad``, which lets the photonic mesh factories
    serve their transfer matrices from the eval-mode build cache
    (:mod:`repro.ptc.cache`): with unchanged phases only the first
    batch pays for a mesh build.  ``exec_backend`` selects the array
    engine / dtype for the duration of the pass (e.g. ``"numpy-c64"``
    runs all mesh builds through the complex64 forward lane); None
    keeps the process-wide default.
    """
    return evaluate_population(
        [model], dataset, batch_size=batch_size, exec_backend=exec_backend
    )[0]


def evaluate_population(
    models: List[Module],
    dataset: Dataset,
    batch_size: int = 256,
    exec_backend=None,
) -> List[float]:
    """Top-1 accuracy of a population of candidate models on ``dataset``.

    Shares one pass over the data across all candidates (each batch is
    materialized once and fed to every model) — the evaluation-side
    companion of the single-graph topology scoring in
    :func:`repro.core.search.rank_candidate_topologies`.  Combined with
    the eval-mode unitary build cache, scoring P retrained candidate
    topologies costs one mesh build per candidate, not one per batch.

    Each model's train/eval mode is saved on entry and restored on
    exit, so evaluating a model that was already in eval mode leaves
    it in eval mode.  An empty dataset scores 0.0 (no samples, no
    correct predictions) instead of dividing by zero.
    """
    n = len(dataset)
    prior_modes = [m.training for m in models]
    try:
        for m in models:
            m.eval()
        correct = np.zeros(len(models), dtype=int)
        with no_grad(), backend_scope(exec_backend):
            for start in range(0, n, batch_size):
                xb = Tensor(dataset.images[start : start + batch_size])
                yb = dataset.labels[start : start + batch_size]
                for i, m in enumerate(models):
                    logits = m(xb)
                    correct[i] += int((np.argmax(logits.data, axis=-1) == yb).sum())
    finally:
        for m, mode in zip(models, prior_modes):
            m.train(mode)
    if n == 0:
        return [0.0 for _ in models]
    return [c / n for c in correct]


def train(
    model: Module,
    train_set: Dataset,
    test_set: Optional[Dataset] = None,
    config: Optional[TrainConfig] = None,
    rng: Optional[np.random.Generator] = None,
    epoch_hook: Optional[Callable[[int, Module], None]] = None,
) -> TrainResult:
    """Train ``model`` with Adam + (optional) cosine LR.

    ``epoch_hook(epoch, model)`` runs after every epoch — used by the
    search flow to interleave architecture updates and by tests to
    inject assertions mid-training.
    """
    cfg = config or TrainConfig()
    loader = DataLoader(train_set, batch_size=cfg.batch_size, shuffle=True, rng=rng)
    opt = Adam(model.parameters(), lr=cfg.lr, weight_decay=cfg.weight_decay)
    sched = CosineAnnealingLR(opt, t_max=cfg.epochs) if cfg.cosine_lr else None
    loss_fn = CrossEntropyLoss()
    result = TrainResult()
    t0 = time.time()
    model.train()

    for epoch in range(cfg.epochs):
        # Step at the start of each epoch: epoch 0 trains at the base
        # LR and the final epoch trains at the fully annealed floor
        # (stepping at the end left the last cosine point unused).
        if sched is not None:
            sched.step()
        epoch_loss, epoch_correct, n_seen = 0.0, 0, 0
        for i, (xb, yb) in enumerate(loader):
            logits = model(Tensor(xb))
            loss = loss_fn(logits, yb)
            model.zero_grad()
            loss.backward()
            if cfg.grad_clip:
                clip_grad_norm_(model.parameters(), cfg.grad_clip)
            opt.step()
            epoch_loss += float(loss.item()) * len(yb)
            epoch_correct += int((np.argmax(logits.data, axis=-1) == yb).sum())
            n_seen += len(yb)
            if cfg.log_every and (i + 1) % cfg.log_every == 0 and cfg.verbose:
                print(f"  epoch {epoch} batch {i + 1}: loss {loss.item():.4f}")
        result.train_losses.append(epoch_loss / n_seen)
        result.train_accs.append(epoch_correct / n_seen)
        if test_set is not None:
            result.test_accs.append(evaluate(model, test_set))
        if cfg.verbose:
            acc = result.test_accs[-1] if test_set is not None else float("nan")
            print(
                f"epoch {epoch}: loss {result.train_losses[-1]:.4f} "
                f"train_acc {result.train_accs[-1]:.4f} test_acc {acc:.4f}"
            )
        if epoch_hook is not None:
            epoch_hook(epoch, model)

    result.seconds = time.time() - t0
    return result
