"""ONN model zoo (paper section 4.1).

* ``build_cnn2`` — the search-proxy model:
  C32K5-BN-ReLU-C32K5-BN-ReLU-Pool5-FC10.
* ``build_lenet5`` — LeNet-5 used for transfer evaluation (Table 3).
* ``build_vgg8`` — VGG-8 used for transfer evaluation (Table 3).

All convolution / linear layers are photonic (:class:`PTCConv2d` /
:class:`PTCLinear`) built on a shared mesh specification: ``"mzi"``,
``"butterfly"``, or a searched :class:`~repro.core.topology.PTCTopology`.
``width_mult`` scales channel counts so the CPU-only test environment
can run the same architectures at reduced width (the paper trains the
full-width models on GPU); channel ratios between layers are preserved.
"""

from __future__ import annotations

import math
from typing import Optional

from .. import nn
from .layers import MeshSpec, PTCConv2d, PTCLinear


def _ch(base: int, width_mult: float) -> int:
    return max(2, int(round(base * width_mult)))


def build_cnn2(
    mesh: MeshSpec,
    k: int = 8,
    in_channels: int = 1,
    image_size: int = 28,
    n_classes: int = 10,
    width_mult: float = 1.0,
    rng=None,
) -> nn.Module:
    """The paper's 2-layer proxy CNN: C32K5-BN-ReLU-C32K5-BN-ReLU-Pool5-FC10."""
    c = _ch(32, width_mult)
    feat = image_size - 4 - 4  # two valid 5x5 convolutions
    pooled = feat // 5
    return nn.Sequential(
        PTCConv2d(in_channels, c, 5, k=k, mesh=mesh, rng=rng),
        nn.BatchNorm2d(c),
        nn.ReLU(),
        PTCConv2d(c, c, 5, k=k, mesh=mesh, rng=rng),
        nn.BatchNorm2d(c),
        nn.ReLU(),
        nn.AvgPool2d(5),
        nn.Flatten(),
        PTCLinear(c * pooled * pooled, n_classes, k=k, mesh=mesh, rng=rng),
    )


def build_lenet5(
    mesh: MeshSpec,
    k: int = 8,
    in_channels: int = 1,
    image_size: int = 28,
    n_classes: int = 10,
    width_mult: float = 1.0,
    rng=None,
) -> nn.Module:
    """LeNet-5: C6K5-Pool2-C16K5-Pool2-FC120-FC84-FC10 (photonic layers)."""
    c1 = _ch(6, width_mult)
    c2 = _ch(16, width_mult)
    f1 = _ch(120, width_mult)
    f2 = _ch(84, width_mult)
    s = (image_size - 4) // 2
    s = (s - 4) // 2
    return nn.Sequential(
        PTCConv2d(in_channels, c1, 5, k=k, mesh=mesh, rng=rng),
        nn.BatchNorm2d(c1),
        nn.ReLU(),
        nn.MaxPool2d(2),
        PTCConv2d(c1, c2, 5, k=k, mesh=mesh, rng=rng),
        nn.BatchNorm2d(c2),
        nn.ReLU(),
        nn.MaxPool2d(2),
        nn.Flatten(),
        PTCLinear(c2 * s * s, f1, k=k, mesh=mesh, rng=rng),
        nn.ReLU(),
        PTCLinear(f1, f2, k=k, mesh=mesh, rng=rng),
        nn.ReLU(),
        PTCLinear(f2, n_classes, k=k, mesh=mesh, rng=rng),
    )


def build_vgg8(
    mesh: MeshSpec,
    k: int = 8,
    in_channels: int = 3,
    image_size: int = 32,
    n_classes: int = 10,
    width_mult: float = 1.0,
    rng=None,
) -> nn.Module:
    """VGG-8: three conv stages (64-128-256 base width) + two FC layers."""
    c1 = _ch(64, width_mult)
    c2 = _ch(128, width_mult)
    c3 = _ch(256, width_mult)
    fc = _ch(256, width_mult)
    s = image_size // 8  # three 2x pools

    def stage(cin: int, cout: int) -> list:
        return [
            PTCConv2d(cin, cout, 3, k=k, mesh=mesh, padding=1, rng=rng),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
            PTCConv2d(cout, cout, 3, k=k, mesh=mesh, padding=1, rng=rng),
            nn.BatchNorm2d(cout),
            nn.ReLU(),
            nn.MaxPool2d(2),
        ]

    layers = stage(in_channels, c1) + stage(c1, c2) + stage(c2, c3)
    layers += [
        nn.Flatten(),
        PTCLinear(c3 * s * s, fc, k=k, mesh=mesh, rng=rng),
        nn.ReLU(),
        PTCLinear(fc, n_classes, k=k, mesh=mesh, rng=rng),
    ]
    return nn.Sequential(*layers)


MODEL_BUILDERS = {
    "cnn2": build_cnn2,
    "lenet5": build_lenet5,
    "vgg8": build_vgg8,
}


def build_model(name: str, mesh: MeshSpec, **kwargs) -> nn.Module:
    """Build a model from the zoo by name."""
    if name not in MODEL_BUILDERS:
        raise KeyError(f"unknown model {name!r}; choose from {sorted(MODEL_BUILDERS)}")
    return MODEL_BUILDERS[name](mesh, **kwargs)
