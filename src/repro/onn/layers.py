"""Photonic ONN layers: blocked USV linear and convolution.

The paper's Eq. (1): an ONN layer's weight matrix ``W`` (M x N) is
partitioned into K x K sub-matrices; each block ``W_pq`` is realized
photonically as ``U_pq @ diag(Sigma_pq) @ V_pq`` where the two unitary
meshes share one circuit *topology* across all blocks (that topology is
what ADEPT searches) while phases differ per block.

Coherent detection takes the real part of the optical output field,
which is equivalent to using ``Re(W)`` as the effective weight on real
inputs — the convention used here.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence, Tuple, Union

import numpy as np

from ..autograd import Tensor
from ..nn import functional as F
from ..nn.module import Module, Parameter
from ..photonics.pdk import FoundryPDK
from ..ptc.unitary import (
    ButterflyFactory,
    FixedTopologyFactory,
    MZIMeshFactory,
    UnitaryFactory,
)
from ..utils.rng import get_rng

MeshSpec = Union[str, object]  # "mzi" | "butterfly" | topology-like object


def _make_factories(
    mesh: MeshSpec, k: int, n_units: int, rng
) -> Tuple[UnitaryFactory, UnitaryFactory]:
    """Build the (U, V) unitary factories for a mesh specification."""
    if isinstance(mesh, str):
        name = mesh.lower()
        if name == "mzi":
            return MZIMeshFactory(k, n_units, rng=rng), MZIMeshFactory(k, n_units, rng=rng)
        if name in ("butterfly", "fft"):
            return ButterflyFactory(k, n_units, rng=rng), ButterflyFactory(k, n_units, rng=rng)
        raise ValueError(f"unknown mesh family {mesh!r}")
    # Topology-like object (e.g. repro.core.topology.PTCTopology).
    blocks_u = getattr(mesh, "blocks_u", None)
    blocks_v = getattr(mesh, "blocks_v", None)
    if blocks_u is None or blocks_v is None:
        raise TypeError(
            "mesh must be 'mzi', 'butterfly', or an object with "
            "blocks_u/blocks_v block specifications"
        )
    to_spec = lambda blocks: [(b.perm, b.coupler_mask, b.offset) for b in blocks]
    return (
        FixedTopologyFactory(k, n_units, to_spec(blocks_u), rng=rng),
        FixedTopologyFactory(k, n_units, to_spec(blocks_v), rng=rng),
    )


class BlockUSV(Module):
    """A (rows x cols) real matrix built from K x K photonic USV blocks.

    This is the tensor-core abstraction shared by :class:`PTCLinear`
    and :class:`PTCConv2d`.
    """

    def __init__(self, rows: int, cols: int, k: int, mesh: MeshSpec = "mzi", rng=None):
        super().__init__()
        self.rows = rows
        self.cols = cols
        self.k = k
        self.p = math.ceil(rows / k)
        self.q = math.ceil(cols / k)
        self.n_units = self.p * self.q
        rng_ = get_rng(rng)
        self.u_factory, self.v_factory = _make_factories(mesh, k, self.n_units, rng_)
        # Sigma scale chosen so Re(U diag(S) V) has Kaiming-like variance
        # ~2/fan_in: E|W_ij|^2 ~= sigma_rms^2 / K and Re() halves it.
        bound = 2.0 * math.sqrt(3.0 * k / max(1, cols))
        self.sigma = Parameter(rng_.uniform(-bound, bound, size=(self.n_units, k)))
        #: When set (a (rows, cols) float array), :meth:`forward` returns
        #: it verbatim instead of building the meshes — the hook the
        #: Monte-Carlo robustness engine uses to evaluate precomputed
        #: noisy weight realizations (see :class:`FrozenPhotonicView`).
        self.frozen_weight: Optional[np.ndarray] = None

    def build_complex(self) -> Tensor:
        """Stacked complex blocks, shape (P*Q, K, K)."""
        u = self.u_factory.build()
        v = self.v_factory.build()
        # Sigma follows the built dtype so a complex64 execution
        # backend is not silently promoted back to complex128.
        cdtype = np.result_type(u.data.dtype, v.data.dtype)
        sv = self.sigma.astype(cdtype).reshape((self.n_units, self.k, 1)) * v
        return u @ sv

    def forward(self) -> Tensor:
        """Effective real weight matrix of shape (rows, cols)."""
        if self.frozen_weight is not None:
            return Tensor(self.frozen_weight)
        blocks = self.build_complex().real()  # (P*Q, K, K)
        w = blocks.reshape((self.p, self.q, self.k, self.k))
        w = w.transpose((0, 2, 1, 3)).reshape((self.p * self.k, self.q * self.k))
        if self.p * self.k != self.rows or self.q * self.k != self.cols:
            w = w[: self.rows, : self.cols]
        return w

    def build_weight_trials(
        self,
        offsets_u: Sequence[np.ndarray],
        offsets_v: Sequence[np.ndarray],
        backend: Optional[str] = None,
        const_stacks_u: Optional[np.ndarray] = None,
        const_stacks_v: Optional[np.ndarray] = None,
        exec_backend=None,
    ) -> np.ndarray:
        """Effective real weights of T noisy trials, shape (T, rows, cols).

        The U and V meshes are built for all trials in one fused pass
        (:meth:`repro.ptc.unitary.UnitaryFactory.build_trials`) and
        folded with the shared sigma exactly as :meth:`forward` does,
        so trial t's weight equals what a single forward would produce
        under that trial's phase offsets.  ``exec_backend`` selects the
        array engine / dtype of the trial stacks (e.g. ``"numpy-c64"``
        halves their memory traffic).
        """
        kw_u = {} if const_stacks_u is None else {"const_stacks": const_stacks_u}
        kw_v = {} if const_stacks_v is None else {"const_stacks": const_stacks_v}
        u = self.u_factory.build_trials(
            offsets_u, backend=backend, exec_backend=exec_backend, **kw_u
        )
        v = self.v_factory.build_trials(
            offsets_v, backend=backend, exec_backend=exec_backend, **kw_v
        )
        t = u.shape[0]
        # Cast sigma to the matching real dtype first: float64 * c64
        # would silently promote the whole stack back to complex128.
        rdt = np.float32 if v.dtype == np.complex64 else np.float64
        sv = self.sigma.data.astype(rdt, copy=False).reshape(
            (1, self.n_units, self.k, 1)
        ) * v
        blocks = (u @ sv).real  # (T, P*Q, K, K)
        w = blocks.reshape((t, self.p, self.q, self.k, self.k))
        w = w.transpose((0, 1, 3, 2, 4)).reshape(
            (t, self.p * self.k, self.q * self.k)
        )
        if self.p * self.k != self.rows or self.q * self.k != self.cols:
            w = w[:, : self.rows, : self.cols]
        return np.ascontiguousarray(w)

    # -- hardware accounting -------------------------------------------
    def set_phase_noise(self, std: float) -> None:
        self.u_factory.noise_std = std
        self.v_factory.noise_std = std

    def topology_device_counts(self) -> Tuple[int, int, int]:
        """(n_ps, n_dc, n_cr) of ONE U+V tensor-core instance."""
        pu = self.u_factory.device_counts()
        pv = self.v_factory.device_counts()
        return tuple(a + b for a, b in zip(pu, pv))  # type: ignore[return-value]

    def footprint(self, pdk: FoundryPDK) -> float:
        """Area (um^2) of one tensor-core instance under ``pdk``."""
        n_ps, n_dc, n_cr = self.topology_device_counts()
        return pdk.footprint(n_ps, n_dc, n_cr)


class PTCLinear(Module):
    """Fully-connected layer whose weight is realized by PTC blocks."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        k: int = 8,
        mesh: MeshSpec = "mzi",
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.core = BlockUSV(out_features, in_features, k, mesh=mesh, rng=rng)
        if bias:
            self.bias = Parameter(np.zeros(out_features))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        w = self.core()
        return F.linear(x, w, self.bias)

    def set_phase_noise(self, std: float) -> None:
        self.core.set_phase_noise(std)

    def __repr__(self) -> str:
        return (
            f"PTCLinear({self.in_features}, {self.out_features}, "
            f"k={self.core.k})"
        )


class PTCConv2d(Module):
    """Convolution lowered to im2col + PTC matrix multiplication."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size,
        k: int = 8,
        mesh: MeshSpec = "mzi",
        stride=1,
        padding=0,
        bias: bool = True,
        rng=None,
    ):
        super().__init__()
        kh, kw = F._pair(kernel_size)
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = (kh, kw)
        self.stride = stride
        self.padding = padding
        self.core = BlockUSV(out_channels, in_channels * kh * kw, k, mesh=mesh, rng=rng)
        if bias:
            self.bias = Parameter(np.zeros(out_channels))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        w = self.core()  # (O, C*kh*kw)
        kh, kw = self.kernel_size
        w4 = w.reshape((self.out_channels, self.in_channels, kh, kw))
        return F.conv2d(x, w4, self.bias, stride=self.stride, padding=self.padding)

    def set_phase_noise(self, std: float) -> None:
        self.core.set_phase_noise(std)

    def __repr__(self) -> str:
        return (
            f"PTCConv2d({self.in_channels}, {self.out_channels}, "
            f"kernel_size={self.kernel_size}, k={self.core.k})"
        )


class FrozenPhotonicView(Module):
    """A lightweight view of ``model`` with fixed per-core weights.

    The Monte-Carlo robustness engine precomputes one noisy weight
    realization per (core, trial) with :meth:`BlockUSV.build_weight_trials`
    and wraps the *shared* base model in one view per trial: during the
    view's forward, each core serves its assigned frozen weight instead
    of rebuilding its meshes, and is restored afterwards.  All
    non-photonic state (biases, norm statistics, activations) is the
    base model's own, so a population of views costs one weight matrix
    per core per trial — not a model copy.
    """

    def __init__(
        self, model: Module, assignments: Sequence[Tuple["BlockUSV", np.ndarray]]
    ):
        super().__init__()
        self.base = model
        self._assignments = list(assignments)
        # Match the base model's mode so evaluation helpers that
        # save/restore modes do not clobber it through the view.
        self.train(model.training)

    def forward(self, x: Tensor) -> Tensor:
        for core, w in self._assignments:
            core.frozen_weight = w
        try:
            return self.base(x)
        finally:
            for core, _ in self._assignments:
                core.frozen_weight = None


def photonic_cores(model: Module) -> List[BlockUSV]:
    """All :class:`BlockUSV` cores of ``model`` in traversal order."""
    return [m for m in model.modules() if isinstance(m, BlockUSV)]


def set_model_phase_noise(model: Module, std: float) -> int:
    """Set phase-noise injection on every PTC layer in ``model``.

    Returns the number of photonic cores affected.
    """
    count = 0
    for m in model.modules():
        if isinstance(m, BlockUSV):
            m.u_factory.noise_std = std
            m.v_factory.noise_std = std
            count += 1
    return count


def model_ptc_footprint(model: Module, pdk: FoundryPDK) -> float:
    """Sum of per-core footprints (um^2) over unique core *topologies*.

    All PTC layers share one searched topology in the paper's flow, so
    the reported footprint is that of a single tensor core; this helper
    instead reports the per-core area of the first core found (they are
    identical by construction) — matching the paper's per-PTC numbers.
    """
    for m in model.modules():
        if isinstance(m, BlockUSV):
            return m.footprint(pdk)
    return 0.0
