"""``repro.lint`` — the project's AST-based invariant checker.

Static analysis that encodes this repository's hard-won correctness
rules (reproducible seeding, atomic publishes, mode restoration,
validated queue transitions, virtual-clock determinism ...) as a
gating pass: ``python -m repro lint src/repro`` exits 0 only when the
tree is clean.  See ``docs/LINTS.md`` for the rule catalogue and the
pragma/baseline workflow, and :mod:`repro.lint.engine` /
:mod:`repro.lint.rules` for the machinery.
"""

from .baseline import apply_baseline, load_baseline, write_baseline
from .engine import (
    FileContext,
    Finding,
    Rule,
    available_rules,
    get_rule,
    iter_python_files,
    lint_files,
    lint_paths,
    lint_source,
    register_rule,
)
from . import rules  # noqa: F401  — registers the builtin RLxxx rules

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "apply_baseline",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "lint_files",
    "lint_paths",
    "lint_source",
    "load_baseline",
    "register_rule",
    "write_baseline",
]
