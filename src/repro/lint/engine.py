"""Core machinery of ``repro lint`` — the project invariant checker.

Every correctness bug this repository has shipped was a *class*, not a
one-off: ``PYTHONHASHSEED``-dependent ``hash()`` seeds (PR 4), the
``(p+d)-d`` floating-point restore idiom that corrupted every SPSA
evaluation (PR 8), eval-mode clobbering (PR 4), non-atomic artifact
writes (PR 7).  This module turns those hard-won rules into a gating
static-analysis pass over Python source:

* :class:`Rule` — one named invariant (``RLxxx``) with an AST check;
  rules register themselves via :func:`register_rule` and are listed by
  :func:`available_rules`.
* :class:`FileContext` — one parsed file plus the cross-rule services
  every check needs: an import table that resolves dotted names to
  fully-qualified module paths (``np.random.normal`` ->
  ``numpy.random.normal``), a parent map for ancestry queries
  (try/finally protection, docstring detection), and the inline
  suppression pragmas.
* :class:`Finding` — one violation: ``(rule, path, line, col,
  message)`` plus the stripped source line (the baseline fingerprint).
* :func:`lint_source` / :func:`lint_files` / :func:`lint_paths` — the
  entry points; a file that fails to parse yields a single ``RL000``
  syntax-error finding instead of crashing the run.

Suppression pragmas (see ``docs/LINTS.md``)::

    x = legacy()  # repro-lint: disable=RL001
    # repro-lint: disable-next-line=RL005,RL002
    # repro-lint: disable-file=RL007      (anywhere in the file)
    # repro-lint: disable-file=all        (opt a file out entirely)

The checked-in ``lint-baseline.json`` grandfathers pre-existing
findings (see :mod:`repro.lint.baseline`); this repository allows only
RL009 (bespoke-sweep) entries there — the frozen pre-campaign parity
oracles keep their legacy loops on purpose.  Every other true positive
gets fixed, not suppressed.
"""

from __future__ import annotations

import ast
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple, Type, Union

__all__ = [
    "FileContext",
    "Finding",
    "Rule",
    "available_rules",
    "get_rule",
    "iter_python_files",
    "lint_files",
    "lint_paths",
    "lint_source",
    "register_rule",
]


@dataclass(frozen=True)
class Finding:
    """One rule violation at one source location."""

    rule: str  #: rule id, e.g. ``"RL005"``
    name: str  #: rule slug, e.g. ``"non-atomic-write"``
    path: str  #: posix path as given to the linter
    line: int  #: 1-based line number
    col: int  #: 0-based column
    message: str  #: human-readable explanation
    text: str = ""  #: stripped source line (baseline fingerprint)

    def to_dict(self) -> dict:
        return {
            "rule": self.rule,
            "name": self.name,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "message": self.message,
            "text": self.text,
        }

    def render(self) -> str:
        return (
            f"{self.path}:{self.line}:{self.col}: "
            f"{self.rule} [{self.name}] {self.message}"
        )


_SORT_KEY = lambda f: (f.path, f.line, f.col, f.rule)  # noqa: E731

_PRAGMA_RE = re.compile(
    r"#\s*repro-lint:\s*(disable(?:-next-line|-file)?)\s*=\s*"
    r"([A-Za-z0-9_]+(?:\s*,\s*[A-Za-z0-9_]+)*)"
)


def _scan_pragmas(lines: Sequence[str]) -> Tuple[Set[str], Dict[int, Set[str]]]:
    """Extract suppression pragmas from raw source lines.

    Returns ``(file_disables, line_disables)`` where ``line_disables``
    maps a 1-based line number to the rule ids disabled there.  The
    token ``all`` disables every rule.
    """
    file_disables: Set[str] = set()
    line_disables: Dict[int, Set[str]] = {}
    for i, line in enumerate(lines, start=1):
        for m in _PRAGMA_RE.finditer(line):
            kind = m.group(1)
            ids = {s.strip() for s in m.group(2).split(",") if s.strip()}
            if kind == "disable-file":
                file_disables |= ids
            elif kind == "disable-next-line":
                line_disables.setdefault(i + 1, set()).update(ids)
            else:  # disable= applies to its own physical line
                line_disables.setdefault(i, set()).update(ids)
    return file_disables, line_disables


class FileContext:
    """One parsed source file plus the services rules share.

    Parameters
    ----------
    path:
        The path the file is reported under (posix-normalized).  Rules
        use it for location-dependent checks (e.g. RL005 exempts
        ``utils/serialization.py``; RL006 only applies inside the
        deterministic packages).
    source:
        Full file text.
    tree:
        The parsed ``ast.Module``.
    """

    def __init__(self, path: Union[str, Path], source: str, tree: ast.Module):
        self.path = Path(path).as_posix()
        self.source = source
        self.lines = source.splitlines()
        self.tree = tree
        self.file_disables, self.line_disables = _scan_pragmas(self.lines)
        self._parents: Dict[ast.AST, ast.AST] = {}
        for parent in ast.walk(tree):
            for child in ast.iter_child_nodes(parent):
                self._parents[child] = parent
        self.imports = self._collect_imports(tree)
        self.rebound: Set[str] = self._collect_rebound(tree)

    # -- import / name resolution ---------------------------------------

    @staticmethod
    def _collect_imports(tree: ast.Module) -> Dict[str, str]:
        """Map local aliases to fully-qualified dotted names."""
        table: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    table[local] = alias.name if alias.asname else local
            elif isinstance(node, ast.ImportFrom):
                mod = ("." * node.level) + (node.module or "")
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    table[local] = f"{mod}.{alias.name}" if mod else alias.name
        return table

    @staticmethod
    def _collect_rebound(tree: ast.Module) -> Set[str]:
        """Names bound anywhere in the file (assignments, defs, args).

        Used to avoid resolving a *local* ``hash`` / ``open`` / ``time``
        to the builtin or stdlib object a rule targets.
        """
        bound: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
                bound.add(node.id)
            elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
                bound.add(node.name)
            elif isinstance(node, ast.arg):
                bound.add(node.arg)
        return bound

    def resolve(self, node: ast.AST) -> Optional[str]:
        """Fully-qualified dotted name of a Name/Attribute chain.

        ``np.random.normal`` with ``import numpy as np`` resolves to
        ``"numpy.random.normal"``; an unresolvable head (a local
        object, a call result) returns ``None``.
        """
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        head = self.imports.get(node.id)
        if head is None:
            return None
        parts.append(head)
        return ".".join(reversed(parts))

    def is_builtin(self, name: str) -> bool:
        """True when bare ``name`` still refers to the builtin."""
        return name not in self.imports and name not in self.rebound

    # -- ancestry --------------------------------------------------------

    def parent(self, node: ast.AST) -> Optional[ast.AST]:
        return self._parents.get(node)

    def ancestors(self, node: ast.AST) -> Iterator[ast.AST]:
        cur = self._parents.get(node)
        while cur is not None:
            yield cur
            cur = self._parents.get(cur)

    def is_docstring(self, node: ast.Constant) -> bool:
        """True when ``node`` is a module/class/function docstring."""
        parent = self.parent(node)
        if not isinstance(parent, ast.Expr):
            return False
        grand = self.parent(parent)
        if not isinstance(
            grand, (ast.Module, ast.ClassDef, ast.FunctionDef, ast.AsyncFunctionDef)
        ):
            return False
        body = grand.body
        return bool(body) and body[0] is parent

    # -- path predicates -------------------------------------------------

    def in_directories(self, names: Iterable[str]) -> bool:
        """True when any path component matches one of ``names``."""
        parts = set(Path(self.path).parts)
        return bool(parts & set(names))

    def path_endswith(self, suffix: str) -> bool:
        return self.path.endswith(suffix)

    # -- function iteration ----------------------------------------------

    def functions(self) -> Iterator[ast.AST]:
        for node in ast.walk(self.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                yield node

    @staticmethod
    def function_body_nodes(fn: ast.AST) -> Iterator[ast.AST]:
        """All nodes of ``fn``'s own body, not descending into nested
        function/class definitions (they get their own visit)."""
        stack: List[ast.AST] = list(ast.iter_child_nodes(fn))
        while stack:
            node = stack.pop()
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)):
                continue
            yield node
            stack.extend(ast.iter_child_nodes(node))

    # -- finding construction ---------------------------------------------

    def line_text(self, line: int) -> str:
        if 1 <= line <= len(self.lines):
            return self.lines[line - 1].strip()
        return ""


class Rule:
    """Base class for one lint rule.

    Subclasses set ``id`` (``"RLxxx"``), ``name`` (kebab-case slug),
    ``description`` (one line, shown by ``--list-rules``) and
    ``rationale`` (the historical bug / convention; rendered in
    ``docs/LINTS.md``), and implement :meth:`check`.
    """

    id: str = ""
    name: str = ""
    description: str = ""
    rationale: str = ""

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        raise NotImplementedError

    def finding(self, ctx: FileContext, node: ast.AST, message: str) -> Finding:
        line = getattr(node, "lineno", 1)
        return Finding(
            rule=self.id,
            name=self.name,
            path=ctx.path,
            line=line,
            col=getattr(node, "col_offset", 0),
            message=message,
            text=ctx.line_text(line),
        )


#: Registry of rule id -> instance, populated by :func:`register_rule`.
_RULES: Dict[str, Rule] = {}


def register_rule(cls: Type[Rule]) -> Type[Rule]:
    """Class decorator adding a rule to the registry (id must be new)."""
    inst = cls()
    if not inst.id or not inst.name:
        raise ValueError(f"rule {cls.__name__} must define id and name")
    if inst.id in _RULES:
        raise ValueError(f"duplicate rule id {inst.id}")
    _RULES[inst.id] = inst
    return cls


def available_rules() -> List[Rule]:
    """All registered rules, sorted by id."""
    _ensure_builtin_rules()
    return [_RULES[k] for k in sorted(_RULES)]


def get_rule(rule_id: str) -> Rule:
    _ensure_builtin_rules()
    try:
        return _RULES[rule_id]
    except KeyError:
        raise KeyError(
            f"unknown lint rule {rule_id!r}; known: {', '.join(sorted(_RULES))}"
        ) from None


def _ensure_builtin_rules() -> None:
    # Importing the module runs the @register_rule decorators.
    from . import rules  # noqa: F401


# ----------------------------------------------------------------------
# entry points
# ----------------------------------------------------------------------

def lint_source(
    source: str,
    path: Union[str, Path] = "<string>",
    rules: Optional[Sequence[Rule]] = None,
) -> List[Finding]:
    """Lint one source string reported under ``path``.

    A syntax error yields a single ``RL000`` finding (never suppressed
    by pragmas — a file that does not parse cannot be vetted at all).
    """
    if rules is None:
        rules = available_rules()
    posix = Path(path).as_posix()
    try:
        tree = ast.parse(source, filename=posix)
    except SyntaxError as exc:
        return [
            Finding(
                rule="RL000",
                name="syntax-error",
                path=posix,
                line=exc.lineno or 1,
                col=(exc.offset or 1) - 1,
                message=f"file does not parse: {exc.msg}",
                text="",
            )
        ]
    ctx = FileContext(posix, source, tree)
    if "all" in ctx.file_disables:
        return []
    findings: List[Finding] = []
    for rule in rules:
        if rule.id in ctx.file_disables:
            continue
        for f in rule.check(ctx):
            disabled = ctx.line_disables.get(f.line, ())
            if f.rule in disabled or "all" in disabled:
                continue
            findings.append(f)
    return sorted(findings, key=_SORT_KEY)


def iter_python_files(paths: Sequence[Union[str, Path]]) -> List[Path]:
    """Expand files/directories into a sorted, de-duplicated ``.py`` list."""
    seen: Set[Path] = set()
    out: List[Path] = []
    for p in paths:
        p = Path(p)
        if p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        elif p.exists():
            candidates = [p]
        else:
            raise FileNotFoundError(f"no such file or directory: {p}")
        for c in candidates:
            if c not in seen:
                seen.add(c)
                out.append(c)
    return out


def lint_files(
    files: Sequence[Union[str, Path]], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint a flat list of files, findings sorted by location."""
    findings: List[Finding] = []
    for f in files:
        source = Path(f).read_text(encoding="utf-8")
        findings.extend(lint_source(source, path=f, rules=rules))
    return sorted(findings, key=_SORT_KEY)


def lint_paths(
    paths: Sequence[Union[str, Path]], rules: Optional[Sequence[Rule]] = None
) -> List[Finding]:
    """Lint files and/or directory trees (the CLI entry point)."""
    return lint_files(iter_python_files(paths), rules=rules)
