"""Grandfathered-finding baseline for ``repro lint``.

A baseline lets the linter gate *new* violations while a pre-existing
backlog is burned down.  The checked-in ``lint-baseline.json`` of this
repository is **empty by policy** — every true positive found when the
linter landed was fixed, not suppressed — but the mechanism stays so a
future rule with a large blast radius can land gating on day one.

Fingerprinting is line-number independent: a baselined finding is
``(rule, path, stripped source line text)``, counted as a multiset, so
unrelated edits above a grandfathered line do not resurrect it, while
a *new* second occurrence of the same pattern in the same file is
still reported.
"""

from __future__ import annotations

import json
from collections import Counter
from pathlib import Path
from typing import List, Sequence, Tuple, Union

from .engine import Finding

__all__ = [
    "apply_baseline",
    "baseline_key",
    "load_baseline",
    "write_baseline",
]

BASELINE_VERSION = 1


def baseline_key(finding: Finding) -> Tuple[str, str, str]:
    return (finding.rule, finding.path, finding.text)


def load_baseline(path: Union[str, Path]) -> Counter:
    """Load a baseline file into a fingerprint multiset."""
    data = json.loads(Path(path).read_text(encoding="utf-8"))
    if not isinstance(data, dict) or data.get("version") != BASELINE_VERSION:
        raise ValueError(
            f"{path}: not a repro-lint baseline (want version {BASELINE_VERSION})"
        )
    counts: Counter = Counter()
    for entry in data.get("findings", []):
        counts[(entry["rule"], entry["path"], entry["text"])] += 1
    return counts


def write_baseline(path: Union[str, Path], findings: Sequence[Finding]) -> None:
    """Write ``findings`` as a baseline (atomic, sorted, stable)."""
    from ..utils.serialization import atomic_write_text, canonical_json_dumps

    entries = sorted(
        (
            {"rule": f.rule, "path": f.path, "text": f.text}
            for f in findings
        ),
        key=lambda e: (e["path"], e["rule"], e["text"]),
    )
    payload = {"version": BASELINE_VERSION, "findings": entries}
    atomic_write_text(path, canonical_json_dumps(payload) + "\n")


def apply_baseline(
    findings: Sequence[Finding], baseline: Counter
) -> Tuple[List[Finding], int]:
    """Split findings into (new, n_grandfathered) against ``baseline``.

    Matching consumes baseline entries one-for-one, so K baselined
    occurrences of a pattern suppress at most K findings.
    """
    remaining = Counter(baseline)
    fresh: List[Finding] = []
    grandfathered = 0
    for f in findings:
        key = baseline_key(f)
        if remaining.get(key, 0) > 0:
            remaining[key] -= 1
            grandfathered += 1
        else:
            fresh.append(f)
    return fresh, grandfathered
