"""The project's invariant rules — each one paid for by a real bug.

| id    | slug                     | motivating bug / convention        |
|-------|--------------------------|------------------------------------|
| RL001 | unstable-seed            | PR 4: ``hash()`` seeds depended on |
|       |                          | ``PYTHONHASHSEED``                 |
| RL002 | global-rng               | standing convention: threaded      |
|       |                          | ``Generator``s, never the legacy   |
|       |                          | ``numpy.random`` module state      |
| RL003 | float-restore            | PR 8: ``(p+d)-d`` does not         |
|       |                          | round-trip in floating point       |
| RL004 | mode-leak                | PR 4: ``evaluate`` clobbered       |
|       |                          | train/eval mode                    |
| RL005 | non-atomic-write         | PR 7: torn artifact writes; all    |
|       |                          | publishes go through               |
|       |                          | ``utils/serialization.py``         |
| RL006 | wall-clock               | PR 8: deterministic packages run   |
|       |                          | on a virtual clock / injected      |
|       |                          | ``now=``                           |
| RL007 | raw-queue-transition     | PR 7: job/shard ``status`` edges   |
|       |                          | are validated only in              |
|       |                          | ``service/queue.py``               |
| RL008 | cli-exit-contract        | PR 7: CLI failures must not exit 0 |
| RL009 | bespoke-sweep            | campaign redesign: sweeps are      |
|       |                          | declarative ``CampaignSpec`` data, |
|       |                          | not hand-rolled loops              |

Every rule is a heuristic over the AST — precise enough to catch each
historical bug verbatim (``tests/lint/test_rules.py`` locks this), and
escapable with an inline ``# repro-lint: disable=RLxxx`` pragma where a
human has judged the code correct.
"""

from __future__ import annotations

import ast
import re
from pathlib import Path
from typing import Iterator, List, Optional, Set, Tuple

from .engine import FileContext, Finding, Rule, register_rule

__all__ = [
    "UnstableSeedRule",
    "GlobalRngRule",
    "FloatRestoreRule",
    "ModeLeakRule",
    "NonAtomicWriteRule",
    "WallClockRule",
    "RawQueueTransitionRule",
    "CliExitContractRule",
    "BespokeSweepRule",
]


@register_rule
class UnstableSeedRule(Rule):
    """RL001 — builtin ``hash()`` is randomized per process.

    Python salts string hashing with ``PYTHONHASHSEED``, so any seed
    derived via ``hash(...)`` differs between runs and machines.  PR 4
    replaced every such seed with blake2b-backed
    :func:`repro.utils.rng.stable_hash` / ``stable_seed``; the project
    convention since is *never* ``hash()`` — for seeds or anything
    else that must reproduce.
    """

    id = "RL001"
    name = "unstable-seed"
    description = "builtin hash() in seed/rng derivation (PYTHONHASHSEED-dependent)"
    rationale = (
        "PR 4: `seed=hash((label, i)) % 2**31` made every experiment "
        "irreproducible across processes; use utils.rng.stable_hash/stable_seed."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
                and ctx.is_builtin("hash")
            ):
                yield self.finding(
                    ctx,
                    node,
                    "builtin hash() depends on PYTHONHASHSEED; derive seeds "
                    "with repro.utils.rng.stable_hash/stable_seed instead",
                )


#: ``numpy.random`` attributes that are *not* the legacy global-state
#: API: Generator construction and bit generators are the sanctioned
#: replacements.
_NP_RANDOM_OK = {
    "default_rng",
    "Generator",
    "SeedSequence",
    "BitGenerator",
    "PCG64",
    "PCG64DXSM",
    "MT19937",
    "Philox",
    "SFC64",
    "RandomState",  # flagged separately below with a clearer message
}


@register_rule
class GlobalRngRule(Rule):
    """RL002 — legacy module-level ``numpy.random`` state.

    ``np.random.seed`` / ``np.random.normal`` et al. mutate or read one
    hidden process-global stream: any library call that also touches it
    silently reorders every subsequent draw, and parallel workers
    share (or duplicate) state.  All randomness must flow through
    explicitly threaded ``numpy.random.Generator`` objects
    (:mod:`repro.utils.rng`).
    """

    id = "RL002"
    name = "global-rng"
    description = "module-level numpy.random state instead of a threaded Generator"
    rationale = (
        "Standing convention since the seed: every stochastic component "
        "draws from an explicit Generator so one seed reproduces the run."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qual = ctx.resolve(node.func)
                if qual is None or not qual.startswith("numpy.random."):
                    continue
                leaf = qual.split(".")[2] if len(qual.split(".")) > 2 else ""
                if leaf == "RandomState":
                    yield self.finding(
                        ctx,
                        node,
                        "numpy.random.RandomState is the legacy generator; "
                        "use numpy.random.default_rng / repro.utils.rng",
                    )
                elif leaf and leaf not in _NP_RANDOM_OK:
                    yield self.finding(
                        ctx,
                        node,
                        f"numpy.random.{leaf} uses the hidden global RNG "
                        "stream; thread an explicit numpy.random.Generator "
                        "(see repro.utils.rng)",
                    )
            elif isinstance(node, ast.ImportFrom):
                mod = node.module or ""
                if mod == "numpy.random":
                    for alias in node.names:
                        if alias.name not in _NP_RANDOM_OK and alias.name != "*":
                            yield self.finding(
                                ctx,
                                node,
                                f"importing numpy.random.{alias.name} binds "
                                "the hidden global RNG stream; thread an "
                                "explicit Generator instead",
                            )


def _has_nonliteral(node: ast.AST) -> bool:
    """True when an expression involves any non-constant term."""
    return any(
        isinstance(n, (ast.Name, ast.Attribute, ast.Subscript, ast.Call))
        for n in ast.walk(node)
    )


def _dump_expr(node: ast.AST) -> str:
    """``ast.dump`` with load/store contexts erased, so ``p.data`` as
    an assignment target compares equal to ``p.data`` as a read."""
    return re.sub(r"ctx=(?:Load|Store|Del)\(\)", "ctx=()", ast.dump(node))


def _perturb_entry(node: ast.AST) -> Optional[Tuple[str, str, str]]:
    """Normalize a statement into ``(op, target_dump, value_dump)``.

    Recognizes both ``t += v`` / ``t -= v`` and the spelled-out
    ``t = t + v`` / ``t = t - v`` forms; returns None for anything
    else (or for pure-literal ``v``, which round-trips exactly for the
    integer counters it typically is).
    """
    if isinstance(node, ast.AugAssign) and isinstance(node.op, (ast.Add, ast.Sub)):
        target, value, op = node.target, node.value, node.op
    elif (
        isinstance(node, ast.Assign)
        and len(node.targets) == 1
        and isinstance(node.value, ast.BinOp)
        and isinstance(node.value.op, (ast.Add, ast.Sub))
        and _dump_expr(node.value.left) == _dump_expr(node.targets[0])
    ):
        target, value, op = node.targets[0], node.value.right, node.value.op
    else:
        return None
    if not _has_nonliteral(value):
        return None
    kind = "add" if isinstance(op, ast.Add) else "sub"
    return kind, _dump_expr(target), _dump_expr(value)


@register_rule
class FloatRestoreRule(Rule):
    """RL003 — in-place perturb-then-subtract on arrays.

    ``(p + d) - d`` does **not** round-trip in floating point: every
    SPSA evaluation before PR 8 left a few ULPs of rounding error in
    every phase, silently drifting the calibration state it was
    supposed to leave untouched.  Restores must come from a saved copy
    (``saved = p.data.copy(); ...; p.data = saved``).
    """

    id = "RL003"
    name = "float-restore"
    description = "perturb-then-subtract restore; (p+d)-d does not round-trip"
    rationale = (
        "PR 8: SPSA's `p.data += sign*d ... p.data -= sign*d` corrupted "
        "every phase per evaluation; restore from a saved copy."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ctx.functions():
            entries: List[Tuple[str, str, str, ast.AST]] = []
            for node in ctx.function_body_nodes(fn):
                e = _perturb_entry(node)
                if e is not None:
                    entries.append((*e, node))
            entries.sort(key=lambda t: (t[3].lineno, t[3].col_offset))
            consumed: Set[int] = set()
            for i, (kind_i, tgt_i, val_i, _node_i) in enumerate(entries):
                if i in consumed:
                    continue
                inverse = "sub" if kind_i == "add" else "add"
                for j in range(i + 1, len(entries)):
                    if j in consumed:
                        continue
                    kind_j, tgt_j, val_j, node_j = entries[j]
                    if kind_j == inverse and tgt_i == tgt_j and val_i == val_j:
                        consumed.add(i)
                        consumed.add(j)
                        yield self.finding(
                            ctx,
                            node_j,
                            "perturb-then-subtract restore: (p+d)-d does not "
                            "round-trip in floating point; restore the array "
                            "from a copy saved before the perturbation",
                        )
                        break


def _mode_call(node: ast.AST) -> Optional[ast.Call]:
    """Return ``node`` when it is an ``<expr>.train(...)``/``.eval()`` call."""
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("train", "eval")
    ):
        return node
    return None


def _subtree_contains(root_stmts, node: ast.AST) -> bool:
    for stmt in root_stmts:
        for n in ast.walk(stmt):
            if n is node:
                return True
    return False


@register_rule
class ModeLeakRule(Rule):
    """RL004 — ``.train()``/``.eval()`` without try/finally restore.

    PR 4 fixed ``evaluate`` helpers that flipped models into eval mode
    and left them there, silently disabling noise injection for the
    rest of training.  A function that changes an *existing* object's
    mode as an implementation detail must save the prior mode and
    restore it in a ``finally``.  Exempt by design: functions named
    ``train``/``eval`` (the mode-transition API itself) and
    ``self.train(...)`` inside ``__init__`` (a constructor setting its
    own object's initial mode leaks nothing).
    """

    id = "RL004"
    name = "mode-leak"
    description = ".train()/.eval() call without try/finally mode restoration"
    rationale = (
        "PR 4: evaluate() left models in eval mode, disabling "
        "variation-aware noise for the rest of training."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        for fn in ctx.functions():
            if fn.name in ("train", "eval"):
                continue
            for node in ctx.function_body_nodes(fn):
                call = _mode_call(node)
                if call is None:
                    continue
                recv = call.func.value
                if (
                    fn.name == "__init__"
                    and isinstance(recv, ast.Name)
                    and recv.id == "self"
                ):
                    continue
                if self._protected(ctx, call, fn):
                    continue
                yield self.finding(
                    ctx,
                    call,
                    f".{call.func.attr}() changes train/eval mode without a "
                    "try/finally restoring the prior mode (save "
                    "`prior = m.training` and `m.train(prior)` in finally)",
                )

    @staticmethod
    def _protected(ctx: FileContext, call: ast.Call, fn: ast.AST) -> bool:
        for anc in ctx.ancestors(call):
            if anc is fn:
                break
            if isinstance(anc, ast.Try) and anc.finalbody:
                if _subtree_contains(anc.finalbody, call):
                    return True  # this call IS the restore
                for stmt in anc.finalbody:
                    for n in ast.walk(stmt):
                        c = _mode_call(n)
                        if c is not None and c.func.attr == "train":
                            return True
        return False


def _write_mode(call: ast.Call) -> Optional[str]:
    """The mode string of an ``open()`` call when statically known."""
    mode: Optional[ast.expr] = None
    if len(call.args) >= 2:
        mode = call.args[1]
    for kw in call.keywords:
        if kw.arg == "mode":
            mode = kw.value
    if mode is None:
        return "r"
    if isinstance(mode, ast.Constant) and isinstance(mode.value, str):
        return mode.value
    return None  # dynamic mode: give the benefit of the doubt


@register_rule
class NonAtomicWriteRule(Rule):
    """RL005 — bare ``open(path, "w")`` artifact writes.

    A crash (or a concurrent reader) between the first byte and the
    last leaves a torn file that parses as truncated garbage.  Every
    publish goes through the same-directory tmp + ``os.replace``
    helpers in ``utils/serialization.py`` (``atomic_write_text`` /
    ``atomic_write_bytes``), which is the one file exempt from this
    rule.
    """

    id = "RL005"
    name = "non-atomic-write"
    description = 'open(path, "w"/"wb"/"a") outside utils/serialization.py'
    rationale = (
        "PR 7: concurrent queue/cache readers must never observe a "
        "torn write; publishes are tmp+rename via atomic_write_*."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith("utils/serialization.py"):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "open"
                and ctx.is_builtin("open")
            ):
                mode = _write_mode(node)
                if mode is not None and any(c in mode for c in "wax"):
                    yield self.finding(
                        ctx,
                        node,
                        f'open(..., "{mode}") writes non-atomically; publish '
                        "via repro.utils.serialization.atomic_write_text/"
                        "atomic_write_bytes (tmp + os.replace)",
                    )


#: Packages whose results must be a pure function of (inputs, seed,
#: virtual clock) — wall-clock reads make replays diverge.
_DETERMINISTIC_DIRS = {"autograd", "ptc", "core", "photonics", "hardware"}

_WALL_CLOCK_CALLS = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register_rule
class WallClockRule(Rule):
    """RL006 — wall-clock reads inside the deterministic packages.

    ``autograd/``, ``ptc/``, ``core/``, ``photonics/`` and
    ``hardware/`` must replay byte-identically (the drift scenarios in
    ``tests/hardware/`` depend on it): time advances only through the
    virtual clock (``SimulatedChip.virtual_time_s``) or an injected
    ``now=`` parameter, never ``time.time()``.
    """

    id = "RL006"
    name = "wall-clock"
    description = "time.time()/datetime.now() inside a deterministic package"
    rationale = (
        "PR 8: the hardware layer replays byte-identically because "
        "serving itself advances a virtual clock; wall-clock reads "
        "would make every replay diverge."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_directories(_DETERMINISTIC_DIRS):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                qual = ctx.resolve(node.func)
                if qual in _WALL_CLOCK_CALLS:
                    yield self.finding(
                        ctx,
                        node,
                        f"{qual}() reads the wall clock inside a "
                        "deterministic package; use the virtual clock or an "
                        "injected now= parameter",
                    )


_STATUS_SQL_RE = re.compile(
    r"(?is)(\bupdate\s+(jobs|shards)\b.*?\bset\b.*?\bstatus\s*=)"
    r"|(\binsert\s+into\s+(jobs|shards)\b)"
)


@register_rule
class RawQueueTransitionRule(Rule):
    """RL007 — raw SQL on the job/shard ``status`` column.

    Every state edge of the design-service queue is validated against
    the ``JOB_TRANSITIONS``/``SHARD_TRANSITIONS`` machines and logged
    to the audit table — but only if it goes through
    ``service/queue.py``'s ``_transition_job``/``_transition_shard``.
    Raw ``UPDATE jobs SET status=...`` anywhere else can forge an
    illegal edge (``done -> running``) with no audit row.
    """

    id = "RL007"
    name = "raw-queue-transition"
    description = "SQL touching jobs/shards status outside service/queue.py"
    rationale = (
        "PR 7: crash-safety rests on validated atomic transitions with "
        "an append-only audit trail; a raw status write bypasses both."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if ctx.path_endswith("service/queue.py"):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Constant)
                and isinstance(node.value, str)
                and _STATUS_SQL_RE.search(node.value)
                and not ctx.is_docstring(node)
            ):
                yield self.finding(
                    ctx,
                    node,
                    "raw SQL touches the jobs/shards status column; go "
                    "through service/queue.py's validated transition helpers",
                )


def _is_broad_handler(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True
    names = []
    if isinstance(handler.type, ast.Tuple):
        names = [getattr(e, "id", None) for e in handler.type.elts]
    elif isinstance(handler.type, ast.Name):
        names = [handler.type.id]
    return any(n in ("Exception", "BaseException") for n in names)


def _handler_signals_failure(handler: ast.ExceptHandler) -> bool:
    """True when the handler re-raises or produces a non-zero exit."""
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Return):
            v = node.value
            if v is None:
                continue
            if isinstance(v, ast.Constant):
                if v.value not in (0, None, False):
                    return True
            else:
                return True  # dynamic return: benefit of the doubt
        if isinstance(node, ast.Call):
            qual_tail = None
            if isinstance(node.func, ast.Attribute):
                qual_tail = node.func.attr
            elif isinstance(node.func, ast.Name):
                qual_tail = node.func.id
            if qual_tail in ("exit", "_exit", "abort"):
                args = node.args
                if not args:
                    continue
                a = args[0]
                if not isinstance(a, ast.Constant) or a.value not in (0, None):
                    return True
    return False


@register_rule
class CliExitContractRule(Rule):
    """RL008 — CLI handlers that swallow failures into exit 0.

    The repo-wide contract (pinned by subprocess tests): success exits
    0, command failure exits 1 with ``error:`` on stderr, usage errors
    exit 2.  A broad ``except`` in a ``cmd_*``/``main`` handler that
    neither re-raises nor returns non-zero converts every failure into
    a silent success — automation downstream keeps going on garbage.
    Applies to ``cli.py`` / ``__main__.py`` modules.
    """

    id = "RL008"
    name = "cli-exit-contract"
    description = "CLI except block that swallows the failure into exit 0"
    rationale = (
        "PR 7: every `python -m repro` subcommand must exit non-zero "
        "on failure; service automation keys off the exit code."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if Path(ctx.path).name not in ("cli.py", "__main__.py"):
            return
        for fn in ctx.functions():
            if not (fn.name == "main" or fn.name.startswith("cmd_")):
                continue
            for node in ctx.function_body_nodes(fn):
                if isinstance(node, ast.ExceptHandler):
                    if _is_broad_handler(node) and not _handler_signals_failure(node):
                        yield self.finding(
                            ctx,
                            node,
                            "broad except swallows the failure into exit 0; "
                            "re-raise or return a non-zero exit code "
                            "(`error: ...` to stderr, exit 1)",
                        )


_SWEEP_NAME_RE = re.compile(
    r"(?:^|_)(?:values|stds|sigmas|betas|rhos|bits|bit_widths|widths|"
    r"windows|seeds|levels|corners|specs|designs|entries)$",
    re.IGNORECASE,
)


def _is_sweep_iterable(node: ast.AST) -> bool:
    """True when ``for ... in <node>`` walks a parameter grid.

    Matches names/attributes with sweep-shaped suffixes (``*_values``,
    ``*_stds``, ``betas``, ...), subscripts and ``.items()``/``.keys()``
    calls over such containers, ``enumerate``/``sorted``/``zip``
    wrappers around them, and literal tuples/lists of two or more
    numbers.
    """
    if isinstance(node, ast.Name):
        return bool(_SWEEP_NAME_RE.search(node.id))
    if isinstance(node, ast.Attribute):
        return bool(_SWEEP_NAME_RE.search(node.attr))
    if isinstance(node, ast.Subscript):
        return _is_sweep_iterable(node.value)
    if isinstance(node, ast.Call):
        f = node.func
        if isinstance(f, ast.Attribute) and f.attr in ("items", "keys"):
            return _is_sweep_iterable(f.value)
        if isinstance(f, ast.Name) and f.id in (
            "enumerate", "sorted", "reversed", "zip", "list", "tuple"
        ):
            return any(_is_sweep_iterable(a) for a in node.args)
        return False
    if isinstance(node, (ast.List, ast.Tuple)):
        if len(node.elts) < 2:
            return False
        return all(
            isinstance(e, ast.Constant)
            and isinstance(e.value, (int, float))
            and not isinstance(e.value, bool)
            for e in node.elts
        )
    return False


@register_rule
class BespokeSweepRule(Rule):
    """RL009 — hand-rolled parameter-sweep loops in experiment drivers.

    The campaign redesign moved every parameter matrix behind
    ``repro.campaign.CampaignSpec``: axes are declared as data,
    expanded into content-addressed cells, and executed inline or
    sharded through the design service — with caching, resume, and
    artifact emission for free.  A bespoke ``for beta in
    BETA_VALUES:`` loop inside a ``run_*`` driver re-creates none of
    that, so new sweeps must be campaign kinds plus a thin shim.
    Pre-redesign drivers (the frozen ``_run_*_reference`` parity
    oracles and the table sweeps) are grandfathered via
    ``lint-baseline.json``.
    """

    id = "RL009"
    name = "bespoke-sweep"
    description = "hand-rolled parameter sweep in an experiments run_* driver"
    rationale = (
        "campaign redesign: sweeps are declarative CampaignSpec data "
        "(cached, resumable, service-shardable); bespoke loops in "
        "experiment drivers silently fork that machinery."
    )

    def check(self, ctx: FileContext) -> Iterator[Finding]:
        if not ctx.in_directories({"experiments"}):
            return
        for fn in ctx.functions():
            if not fn.name.lstrip("_").startswith("run_"):
                continue
            for node in ctx.function_body_nodes(fn):
                if isinstance(node, ast.For) and _is_sweep_iterable(node.iter):
                    yield self.finding(
                        ctx,
                        node,
                        f"parameter sweep loop in {fn.name}(); declare the "
                        "axis in a repro.campaign.CampaignSpec (see "
                        "docs/CAMPAIGNS.md) instead of a bespoke loop",
                    )
