"""Hardware-abstraction layer: virtual chips and streaming inference.

The stack, bottom to top:

* :mod:`repro.hardware.base` — the :class:`AcceleratorBackend`
  contract (capabilities -> program -> stream -> read detections, with
  dry-run planning and pre-execution validation);
* :mod:`repro.hardware.drift` / :mod:`repro.hardware.simulated` — a
  :class:`SimulatedChip` whose calibration drifts over virtual time;
* :mod:`repro.hardware.monitor` — the rolling-window hysteresis
  trigger;
* :mod:`repro.hardware.recalibration` — snapshot-based pure
  recalibration, inline or through the design-service queue;
* :mod:`repro.hardware.server` — the micro-batching streaming server
  that closes the serve -> drift -> detect -> recalibrate loop.
"""

from .base import (
    AcceleratorBackend,
    ChipCapabilities,
    ExecutionPlan,
    ProgramValidationError,
)
from .drift import DriftState
from .monitor import RollingMonitor
from .recalibration import (
    InlineRecalibrator,
    ServiceRecalibrator,
    build_frozen_twin,
    recalibrate_snapshot,
)
from .server import StreamingServer
from .simulated import SimulatedChip
from .validation import plan_execution, validate_batch, validate_phases

__all__ = [
    "AcceleratorBackend",
    "ChipCapabilities",
    "DriftState",
    "ExecutionPlan",
    "InlineRecalibrator",
    "ProgramValidationError",
    "RollingMonitor",
    "ServiceRecalibrator",
    "SimulatedChip",
    "StreamingServer",
    "build_frozen_twin",
    "plan_execution",
    "recalibrate_snapshot",
    "validate_batch",
    "validate_phases",
]
