"""Rolling quality window with hysteresis — the recalibration trigger.

The streaming server scores the chip after every micro-batch (transfer
fidelity to the served target, or task accuracy when labels exist) and
feeds the score here.  :meth:`RollingMonitor.record` answers one
question: *fire a recalibration now?*

Two guards prevent thrashing:

* the decision uses the **rolling mean** over ``window`` scores, never
  a single noisy reading, and stays quiet until the window has
  ``min_samples`` entries;
* **hysteresis** — after a trigger the monitor is disarmed until the
  mean recovers above ``rearm_above`` (> ``trigger_below``), so a
  slowly-recovering chip cannot re-fire on every batch while the
  window still contains pre-recalibration scores.

``reset()`` empties the window (the server calls it after reprogramming
the chip — old scores describe hardware state that no longer exists).
"""

from __future__ import annotations

from collections import deque
from typing import List, Optional

__all__ = ["RollingMonitor"]


class RollingMonitor:
    """Hysteresis trigger on the rolling mean of a quality score."""

    def __init__(
        self,
        window: int = 16,
        trigger_below: float = 0.95,
        rearm_above: Optional[float] = None,
        min_samples: Optional[int] = None,
    ):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        if rearm_above is None:
            # Default re-arm point: halfway between the trigger and a
            # perfect score — a recovered chip clears it, a marginal
            # one stays disarmed.
            rearm_above = trigger_below + 0.5 * (1.0 - trigger_below)
        if rearm_above < trigger_below:
            raise ValueError(
                f"rearm_above ({rearm_above}) must be >= trigger_below "
                f"({trigger_below}); hysteresis needs a recovery margin")
        if min_samples is None:
            min_samples = window
        if not 1 <= min_samples <= window:
            raise ValueError(
                f"min_samples must be in [1, window={window}], "
                f"got {min_samples}")
        self.window = int(window)
        self.trigger_below = float(trigger_below)
        self.rearm_above = float(rearm_above)
        self.min_samples = int(min_samples)
        self._scores: deque = deque(maxlen=self.window)
        self._armed = True
        self.n_triggers = 0
        self.n_recorded = 0
        self.trigger_indices: List[int] = []

    # -- feed -----------------------------------------------------------
    def record(self, score: float) -> bool:
        """Add one score; True when a recalibration should fire now."""
        self._scores.append(float(score))
        self.n_recorded += 1
        if len(self._scores) < self.min_samples:
            return False
        m = self.mean()
        if self._armed:
            if m < self.trigger_below:
                self._armed = False
                self.n_triggers += 1
                self.trigger_indices.append(self.n_recorded - 1)
                return True
        elif m >= self.rearm_above:
            self._armed = True
        return False

    def reset(self) -> None:
        """Drop the window (scores predating a reprogram are stale)
        and re-arm."""
        self._scores.clear()
        self._armed = True

    # -- inspect --------------------------------------------------------
    @property
    def armed(self) -> bool:
        return self._armed

    def mean(self) -> float:
        if not self._scores:
            return float("nan")
        return sum(self._scores) / len(self._scores)

    def snapshot(self) -> dict:
        """JSON-native state for server reports."""
        return {
            "window": self.window,
            "trigger_below": self.trigger_below,
            "rearm_above": self.rearm_above,
            "armed": self._armed,
            "n_recorded": self.n_recorded,
            "n_triggers": self.n_triggers,
            "trigger_indices": list(self.trigger_indices),
            "current_mean": None if not self._scores else self.mean(),
        }
