"""A simulated photonic accelerator whose calibration drifts.

:class:`SimulatedChip` implements :class:`~repro.hardware.base.
AcceleratorBackend` on top of the existing mesh model: a
:class:`~repro.ptc.unitary.FixedTopologyFactory` holds the programmed
phases, fabrication-time passive errors come from
:func:`~repro.photonics.nonideality.sample_fabrication`, and a
:class:`~repro.hardware.drift.DriftState` evolves the effective phase
error and thermal-crosstalk coupling over a virtual clock.

The physics pipeline per build is the same ordering as
:func:`~repro.photonics.nonideality.noisy_block_matrix`: the
programmed drives are mixed by the (time-varying) crosstalk matrix,
then the accumulated drift offsets are added, then optional runtime
Gaussian phase noise — all injected through the factory's
``phase_transform`` hook so the chip model stays differentiable (the
digital twin a recalibration job reconstructs is exactly this
pipeline with the drift frozen).

Every execution advances the clock by the capability cost model
(``batch_overhead_s + n * sample_time_s``), so *traffic itself* ages
the calibration — the serving phenomenon the paper never measured.
Diagnostic reads (:meth:`transfer_matrix`, :meth:`fidelity_to`) are
free: they model the simulator's introspection access, not a chip
measurement.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Union

import numpy as np

from ..autograd import Tensor, no_grad
from ..core.topology import BlockSpec, PTCTopology
from ..photonics.nonideality import (
    DriftSpec,
    FabricationSample,
    NonidealitySpec,
    fabrication_const_stack,
    fidelity,
    sample_fabrication,
)
from ..ptc.unitary import FixedTopologyFactory
from ..utils.rng import spawn_rng, stable_seed
from .base import AcceleratorBackend, ChipCapabilities, ExecutionPlan
from .drift import DriftState
from .validation import plan_execution, validate_batch, validate_phases

__all__ = ["SimulatedChip"]


class SimulatedChip(AcceleratorBackend):
    """Virtual photonic accelerator with drifting calibration.

    Parameters
    ----------
    topology: a :class:`~repro.core.topology.PTCTopology` (its U-mesh
        blocks are used) or a sequence of
        :class:`~repro.core.topology.BlockSpec`.
    k: mesh size; required when ``topology`` is a block sequence.
    nonideality: fabrication-time passive errors and runtime phase
        noise (:class:`NonidealitySpec`); the crosstalk fields seed
        the *initial* coupling that drift then builds on.
    drift: time-dependent processes (:class:`DriftSpec`); ``None``
        freezes the chip (a statically-noisy part, the paper's
        setting).
    seed: master seed — fabrication draw, initial phases, drift walk
        and runtime noise all derive from it via stable sub-seeds.
    """

    def __init__(
        self,
        topology: Union[PTCTopology, Sequence[BlockSpec]],
        k: Optional[int] = None,
        nonideality: Optional[NonidealitySpec] = None,
        drift: Optional[DriftSpec] = None,
        seed: int = 0,
        phase_range=None,
        max_batch: int = 64,
        program_time_s: float = 0.01,
        batch_overhead_s: float = 0.001,
        sample_time_s: float = 0.0005,
        exec_backend=None,
    ):
        if isinstance(topology, PTCTopology):
            blocks = list(topology.blocks_u)
            k = topology.k
        else:
            blocks = list(topology)
            if k is None:
                raise ValueError("k is required when passing a block sequence")
        self.blocks = blocks
        self.nonideality = nonideality or NonidealitySpec()
        self.drift_spec = drift or DriftSpec()
        self.seed = int(seed)
        caps_kwargs = dict(
            k=int(k),
            n_blocks=len(blocks),
            max_batch=int(max_batch),
            program_time_s=float(program_time_s),
            batch_overhead_s=float(batch_overhead_s),
            sample_time_s=float(sample_time_s),
        )
        if phase_range is not None:
            caps_kwargs["phase_range"] = (float(phase_range[0]),
                                          float(phase_range[1]))
        self._caps = ChipCapabilities(**caps_kwargs)

        # Fabrication: draw the frozen passive errors once.
        self._factory = FixedTopologyFactory(
            k, 1, [(b.perm, b.coupler_mask, b.offset) for b in blocks],
            rng=spawn_rng(stable_seed("hardware-chip-phases", self.seed)),
            exec_backend=exec_backend,
        )
        self._sample: Optional[FabricationSample] = None
        spec = self.nonideality
        if (spec.dc_t_std > 0.0 or spec.loss_ps_db > 0.0
                or spec.loss_dc_db > 0.0 or spec.loss_cr_db > 0.0):
            topo = PTCTopology(k=k, blocks_u=blocks, blocks_v=[])
            self._sample, _ = sample_fabrication(
                topo, spec,
                rng=spawn_rng(stable_seed("hardware-chip-fab", self.seed)))
            self._factory._const = list(
                fabrication_const_stack(blocks, k, spec, self._sample))
        self._factory.noise_std = spec.phase_noise_std
        self._factory._rng = spawn_rng(
            stable_seed("hardware-chip-noise", self.seed))
        self._factory.phase_transform = self._apply_physics

        self._drift = DriftState(
            n_blocks=len(blocks), k=k, spec=self.drift_spec,
            gamma0=spec.crosstalk_gamma, radius=spec.crosstalk_radius,
            seed=stable_seed("hardware-chip-drift", self.seed),
        )
        self._detections: List[np.ndarray] = []
        self.n_programs = 0
        self.n_batches = 0
        self.n_samples = 0

    # -- physics --------------------------------------------------------
    def _apply_physics(self, phases: Tensor) -> Tensor:
        """Programmed drives -> effective phases at the current clock:
        crosstalk mixing, then accumulated drift offsets.  Pure Tensor
        ops, so the pipeline stays differentiable for adjoint twins."""
        out = phases
        c = self._drift.crosstalk()
        if c is not None:
            out = out @ Tensor(c.T)
        off = self._drift.phase_offsets()
        if np.any(off):
            out = out + Tensor(off)
        return out

    # -- AcceleratorBackend ---------------------------------------------
    def capabilities(self) -> ChipCapabilities:
        return self._caps

    def program(self, phases: np.ndarray) -> None:
        """Load a (n_blocks, K) drive program.

        Validation happens before *any* state change; programming
        costs ``program_time_s`` of virtual time (heaters settle while
        drift keeps walking).
        """
        arr = validate_phases(phases, self._caps)
        self._factory.phases.data = arr[None].copy()
        self.n_programs += 1
        self._drift.advance(self._caps.program_time_s)

    @property
    def programmed_phases(self) -> np.ndarray:
        """Copy of the current (n_blocks, K) drive program."""
        return self._factory.phases.data[0].copy()

    def stream(self, batches: Iterable[np.ndarray]) -> int:
        """Execute batches in order, buffering detections.

        Each batch is validated immediately before its own execution
        (an invalid batch stops the stream without touching the chip
        for that batch; earlier results stay buffered).
        """
        n = 0
        for batch in batches:
            arr = validate_batch(batch, self._caps)
            self._detections.append(self._run_batch(arr))
            n += 1
        return n

    def read_detections(self) -> List[np.ndarray]:
        out = self._detections
        self._detections = []
        return out

    def execute(self, batch: np.ndarray) -> np.ndarray:
        """Validate, run, and return one batch's detections without
        touching the stream buffer."""
        arr = validate_batch(batch, self._caps)
        return self._run_batch(arr)

    def plan(self, batch_sizes: Sequence[int],
             include_program: bool = False) -> ExecutionPlan:
        return plan_execution(
            batch_sizes, self._caps, self.drift_spec,
            t_start_s=self._drift.t, gamma0=self.nonideality.crosstalk_gamma,
            include_program=include_program,
        )

    # -- execution core -------------------------------------------------
    def _run_batch(self, arr: np.ndarray) -> np.ndarray:
        """Photodetector intensities |U x|^2 of a validated batch,
        then advance the clock by the batch's virtual cost."""
        u = self.transfer_matrix()
        fields = arr @ u.T
        detections = np.abs(fields) ** 2
        self.n_batches += 1
        self.n_samples += arr.shape[0]
        self._drift.advance(self._caps.batch_seconds(arr.shape[0]))
        return detections

    # -- diagnostics (simulator introspection, no virtual-time cost) ----
    def transfer_matrix(self) -> np.ndarray:
        """The K x K transfer at the current clock."""
        with no_grad():
            return self._factory.build().data[0].copy()

    def fidelity_to(self, target: np.ndarray) -> float:
        """Normalized overlap with ``target`` at the current clock."""
        return fidelity(self.transfer_matrix(), np.asarray(target))

    def relative_error_to(self, target: np.ndarray) -> float:
        target = np.asarray(target)
        u = self.transfer_matrix()
        return float(np.linalg.norm(u - target) / np.linalg.norm(target))

    @property
    def virtual_time_s(self) -> float:
        return self._drift.t

    @property
    def drift_state(self) -> DriftState:
        return self._drift

    # -- recalibration plumbing -----------------------------------------
    def recalibration_params(
        self,
        target: np.ndarray,
        method: str = "adjoint",
        steps: int = 150,
        lr: float = 0.05,
        seed: int = 0,
    ) -> dict:
        """JSON-native snapshot for the ``recalibrate`` job kind.

        Freezes everything a digital twin needs — blocks, realized
        couplers/loss, current drives, the drift effect *right now* —
        so the job is a pure function of its params (the PR 7
        determinism contract).  Apply the job's resulting ``phases``
        back with :meth:`program`.
        """
        target = np.asarray(target, dtype=complex)
        k = self._caps.k
        if target.shape != (k, k):
            raise ValueError(f"target must be {k} x {k}, got {target.shape}")
        params = {
            "k": k,
            "blocks": [b.to_dict() for b in self.blocks],
            "phases": [[float(x) for x in row]
                       for row in self._factory.phases.data[0]],
            "target_re": [[float(x) for x in row] for row in target.real],
            "target_im": [[float(x) for x in row] for row in target.imag],
            "method": method,
            "steps": int(steps),
            "lr": float(lr),
            "seed": int(seed),
        }
        params.update(self._drift.frozen())
        if self._sample is not None:
            params["dc_t"] = [[float(x) for x in t] for t in self._sample.dc_t]
            params["loss_diag"] = [[float(x) for x in d]
                                   for d in self._sample.loss_diag]
        else:
            params["dc_t"] = None
            params["loss_diag"] = None
        return params
