"""Virtual-time drift state of a powered chip.

:class:`DriftState` integrates the processes described by
:class:`repro.photonics.nonideality.DriftSpec` over a virtual clock:

* a seeded Gaussian **random walk** per heater (aging thermo-optic
  shifters) — ``advance(dt)`` adds ``N(0, phase_walk_std^2 * dt)``;
* a deterministic **ambient sinusoid** (HVAC-style temperature
  cycles) evaluated at the current clock;
* **thermal-crosstalk buildup**: the effective coupling gamma
  saturates from the fabrication-time value toward
  ``gamma0 + crosstalk_gamma_drift`` (see
  :func:`repro.photonics.nonideality.crosstalk_gamma_at`).

Determinism contract: two states with the same seed that see the same
sequence of ``advance`` increments are bitwise identical — the
property that makes drifting-chip scenarios replayable (pinned by
``tests/hardware/test_drift.py``).
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..photonics.nonideality import (
    DriftSpec,
    crosstalk_gamma_at,
    thermal_crosstalk_matrix,
)
from ..utils.rng import spawn_rng, stable_seed

__all__ = ["DriftState"]


class DriftState:
    """Evolving drift state of one mesh (``n_blocks`` x ``k`` heaters).

    ``gamma0`` / ``radius`` are the chip's fabrication-time crosstalk
    parameters (from its :class:`~repro.photonics.nonideality.
    NonidealitySpec`); the drift spec moves gamma between them and
    saturation over time.
    """

    def __init__(
        self,
        n_blocks: int,
        k: int,
        spec: DriftSpec,
        gamma0: float = 0.0,
        radius: int = 1,
        seed: int = 0,
    ):
        self.n_blocks = n_blocks
        self.k = k
        self.spec = spec
        self.gamma0 = float(gamma0)
        self.radius = int(radius)
        self.seed = int(seed)
        self.t = 0.0
        self._walk = np.zeros((n_blocks, k))
        self._rng = spawn_rng(stable_seed("hardware-drift", self.seed))

    # -- evolution ------------------------------------------------------
    def advance(self, dt: float) -> None:
        """Advance the virtual clock by ``dt`` seconds.

        A zero advance is a strict no-op (no RNG draw), so diagnostic
        reads never perturb the trajectory.
        """
        if dt < 0:
            raise ValueError(f"dt must be >= 0, got {dt}")
        if dt == 0.0:
            return
        self.t += dt
        if self.spec.phase_walk_std > 0.0:
            step_std = self.spec.phase_walk_std * math.sqrt(dt)
            self._walk = self._walk + self._rng.normal(
                0.0, step_std, size=self._walk.shape)

    # -- current state --------------------------------------------------
    def phase_offsets(self) -> np.ndarray:
        """Current additive phase error per heater, shape (B, K)."""
        off = self._walk
        if self.spec.ambient_amp > 0.0:
            off = off + self.spec.ambient_amp * math.sin(
                2.0 * math.pi * self.t / self.spec.ambient_period_s)
        return off

    def gamma(self) -> float:
        """Effective thermal-crosstalk coefficient at the clock."""
        return crosstalk_gamma_at(
            self.gamma0, self.spec.crosstalk_gamma_drift,
            self.spec.crosstalk_tau_s, self.t)

    def crosstalk(self) -> Optional[np.ndarray]:
        """Current K x K phase-coupling matrix, or None when ideal."""
        g = self.gamma()
        if g <= 0.0:
            return None
        return thermal_crosstalk_matrix(self.k, g, self.radius)

    def accumulated_walk_std(self) -> float:
        """Expected random-walk std at the clock (planning forecast)."""
        return self.spec.phase_walk_std * math.sqrt(self.t)

    # -- serialization (recalibration snapshots) ------------------------
    def frozen(self) -> dict:
        """JSON-native freeze of the *current* drift effect — what a
        recalibration twin needs (offsets + gamma), not the process."""
        return {
            "t_s": float(self.t),
            "phase_offsets": [[float(x) for x in row]
                              for row in self.phase_offsets()],
            "crosstalk_gamma": self.gamma(),
            "crosstalk_radius": self.radius,
        }
