"""Online recalibration: snapshot -> pure job -> new phase program.

The streaming server cannot hand a live :class:`SimulatedChip` to the
PR 7 job queue — jobs cross process boundaries and must be pure
functions of JSON params.  The data flow is therefore:

1. ``chip.recalibration_params(target)`` freezes everything a digital
   twin needs (blocks, realized couplers/loss, current drives, the
   drift effect *right now*) into a JSON-native dict.
2. :func:`recalibrate_snapshot` — pure — rebuilds the frozen twin and
   runs :func:`repro.onn.calibration.calibrate_adjoint` (or
   ``calibrate_spsa``) against the target.  Same params in, same
   phases out, bitwise.
3. The caller applies the returned ``phases`` with ``chip.program``.

:class:`InlineRecalibrator` runs step 2 in-process;
:class:`ServiceRecalibrator` routes it through a
:class:`repro.service.DesignService` queue (the ``recalibrate`` job
kind), which is how a deployment shares calibration work with its
worker fleet.  Both produce identical phases for identical snapshots.
"""

from __future__ import annotations

from typing import List, Optional

import numpy as np

from ..autograd import Tensor
from ..core.topology import BlockSpec
from ..onn.calibration import calibrate_adjoint, calibrate_spsa
from ..photonics.nonideality import (
    FabricationSample,
    NonidealitySpec,
    fabrication_const_stack,
    thermal_crosstalk_matrix,
)
from ..ptc.unitary import FixedTopologyFactory
from ..utils.rng import spawn_rng, stable_seed

__all__ = [
    "InlineRecalibrator",
    "ServiceRecalibrator",
    "build_frozen_twin",
    "recalibrate_snapshot",
]


def build_frozen_twin(params: dict) -> FixedTopologyFactory:
    """Differentiable twin of a chip snapshot, drift frozen in place.

    The twin reproduces the chip's physics pipeline at the snapshot
    instant — crosstalk mixing at the frozen gamma, the frozen phase
    offsets — with runtime noise off, so calibration against it is
    deterministic.
    """
    k = int(params["k"])
    blocks = [BlockSpec.from_dict(b) for b in params["blocks"]]
    factory = FixedTopologyFactory(
        k, 1, [(b.perm, b.coupler_mask, b.offset) for b in blocks],
        rng=spawn_rng(stable_seed("recalibrate-init", int(params["seed"]))),
    )
    factory.phases.data = np.asarray(params["phases"], dtype=float)[None]
    if params.get("dc_t") is not None:
        sample = FabricationSample(
            k=k,
            dc_t=[np.asarray(t, dtype=float) for t in params["dc_t"]],
            loss_diag=[np.asarray(d, dtype=float)
                       for d in params["loss_diag"]],
        )
        factory._const = list(
            fabrication_const_stack(blocks, k, NonidealitySpec(), sample))

    gamma = float(params.get("crosstalk_gamma", 0.0))
    radius = int(params.get("crosstalk_radius", 1))
    offsets = np.asarray(params.get("phase_offsets") or
                         np.zeros((len(blocks), k)), dtype=float)
    xtalk = (thermal_crosstalk_matrix(k, gamma, radius)
             if gamma > 0.0 else None)
    if xtalk is not None or np.any(offsets):
        def frozen_physics(phases: Tensor) -> Tensor:
            out = phases
            if xtalk is not None:
                out = out @ Tensor(xtalk.T)
            if np.any(offsets):
                out = out + Tensor(offsets)
            return out

        factory.phase_transform = frozen_physics
    return factory


def recalibrate_snapshot(params: dict) -> dict:
    """Pure recalibration of one chip snapshot (the ``recalibrate``
    job body).  Returns the new drive program plus the calibration
    trace, all JSON-native."""
    factory = build_frozen_twin(params)
    target = (np.asarray(params["target_re"], dtype=float)
              + 1j * np.asarray(params["target_im"], dtype=float))
    method = params.get("method", "adjoint")
    steps = int(params.get("steps", 150))
    if method == "adjoint":
        result = calibrate_adjoint(
            factory, target, steps=steps,
            lr=float(params.get("lr", 0.05)))
    elif method == "spsa":
        result = calibrate_spsa(
            factory, target, steps=steps,
            rng=spawn_rng(stable_seed("recalibrate-spsa",
                                      int(params.get("seed", 0)))))
    else:
        raise ValueError(f"unknown calibration method {method!r}; "
                         f"expected 'adjoint' or 'spsa'")
    return {
        "method": result.method,
        "initial_error": float(result.initial_error),
        "final_error": float(result.final_error),
        "n_measurements": int(result.n_measurements),
        "history": [float(h) for h in result.history],
        "phases": [[float(x) for x in row]
                   for row in factory.phases.data[0]],
    }


class InlineRecalibrator:
    """Recalibrate in-process: snapshot -> pure solve -> reprogram."""

    def __init__(self, method: str = "adjoint", steps: int = 150,
                 lr: float = 0.05, seed: int = 0):
        self.method = method
        self.steps = int(steps)
        self.lr = float(lr)
        self.seed = int(seed)

    def __call__(self, chip, target: np.ndarray) -> dict:
        params = chip.recalibration_params(
            target, method=self.method, steps=self.steps, lr=self.lr,
            seed=self.seed)
        result = recalibrate_snapshot(params)
        chip.program(np.asarray(result["phases"], dtype=float))
        return result


class ServiceRecalibrator:
    """Recalibrate through a :class:`~repro.service.DesignService`
    queue: submits a ``recalibrate`` job, drains it, and programs the
    resulting phases back onto the chip.

    ``n_workers=0`` (the default) drains in-process — deterministic
    and dependency-free; a deployment would instead point ``service``
    at a root that live workers are already serving.
    """

    def __init__(self, service, method: str = "adjoint", steps: int = 150,
                 lr: float = 0.05, seed: int = 0, n_workers: int = 0,
                 run_queue: bool = True):
        self.service = service
        self.method = method
        self.steps = int(steps)
        self.lr = float(lr)
        self.seed = int(seed)
        self.n_workers = int(n_workers)
        self.run_queue = bool(run_queue)
        self.job_ids: List[str] = []

    def __call__(self, chip, target: np.ndarray) -> dict:
        params = chip.recalibration_params(
            target, method=self.method, steps=self.steps, lr=self.lr,
            seed=self.seed)
        job_id = self.service.submit("recalibrate", params)
        self.job_ids.append(job_id)
        if self.run_queue:
            self.service.run(n_workers=self.n_workers)
        result = self.service.wait(job_id)
        chip.program(np.asarray(result["phases"], dtype=float))
        out = dict(result)
        out["job_id"] = job_id
        return out
