"""Pre-execution validation and dry-run planning.

Every mutation of a chip goes through these checks *first*: a rejected
program or batch must leave the hardware exactly as it was (no
half-applied phase columns, no clock advance).  Violations are
collected and reported together — an operator debugging a bad program
wants the full list, not the first failure.
"""

from __future__ import annotations

import math
from typing import List, Optional, Sequence

import numpy as np

from ..photonics.nonideality import DriftSpec, crosstalk_gamma_at
from .base import ChipCapabilities, ExecutionPlan, ProgramValidationError

__all__ = ["plan_execution", "validate_batch", "validate_phases"]


def validate_phases(phases: np.ndarray, caps: ChipCapabilities) -> np.ndarray:
    """Validate a (n_blocks, K) phase program against ``caps``.

    Checks, in order: array-ness, shape, finiteness, and the heater
    drive range.  Raises :class:`ProgramValidationError` listing every
    violation; returns the validated float64 array on success.
    """
    violations: List[str] = []
    try:
        arr = np.asarray(phases, dtype=float)
    except (TypeError, ValueError) as exc:
        raise ProgramValidationError(
            f"phases are not a numeric array: {exc}") from None
    expected = (caps.n_blocks, caps.k)
    if arr.shape != expected:
        raise ProgramValidationError(
            f"phase program must have shape {expected}, got {arr.shape}")
    if not np.all(np.isfinite(arr)):
        n_bad = int((~np.isfinite(arr)).sum())
        violations.append(f"{n_bad} non-finite phase value(s)")
    else:
        lo, hi = caps.phase_range
        below = arr < lo
        above = arr > hi
        if below.any() or above.any():
            n_out = int(below.sum() + above.sum())
            violations.append(
                f"{n_out} phase(s) outside the drive range "
                f"[{lo:.4f}, {hi:.4f}] rad "
                f"(program spans [{arr.min():.4f}, {arr.max():.4f}])"
            )
    if violations:
        raise ProgramValidationError(
            "phase program rejected: " + "; ".join(violations))
    return arr


def validate_batch(batch: np.ndarray, caps: ChipCapabilities) -> np.ndarray:
    """Validate one optical input batch.

    Accepts a single (K,) field vector or a (n, K) batch; returns the
    2-D array.  Complex amplitudes are allowed (coherent inputs);
    non-finite values and oversized batches are rejected.
    """
    arr = np.asarray(batch)
    if not np.issubdtype(arr.dtype, np.number):
        raise ProgramValidationError(
            f"input batch must be numeric, got dtype {arr.dtype}")
    if arr.ndim == 1:
        arr = arr[None, :]
    if arr.ndim != 2 or arr.shape[1] != caps.k:
        raise ProgramValidationError(
            f"input batch must have shape (n, {caps.k}) or ({caps.k},), "
            f"got {np.asarray(batch).shape}")
    if arr.shape[0] == 0:
        raise ProgramValidationError("input batch is empty")
    if arr.shape[0] > caps.max_batch:
        raise ProgramValidationError(
            f"batch of {arr.shape[0]} exceeds max_batch={caps.max_batch}; "
            f"plan() shows the micro-batch decomposition")
    if not np.all(np.isfinite(arr)):
        raise ProgramValidationError("input batch contains non-finite values")
    return arr


def plan_execution(
    batch_sizes: Sequence[int],
    caps: ChipCapabilities,
    drift: Optional[DriftSpec] = None,
    t_start_s: float = 0.0,
    gamma0: float = 0.0,
    include_program: bool = False,
) -> ExecutionPlan:
    """Dry-run a workload of ``batch_sizes`` requests.

    Oversized batches are split into ``caps.max_batch`` chunks (that
    is the plan's purpose — show the decomposition before running);
    non-positive sizes are violations.  The drift forecast integrates
    the virtual-time cost model: random-walk std
    ``phase_walk_std * sqrt(elapsed)`` and the thermal-crosstalk gamma
    at the end of the window.
    """
    violations: List[str] = []
    chunks: List[int] = []
    n_inputs = 0
    for i, size in enumerate(batch_sizes):
        n = int(size)
        if n <= 0:
            violations.append(f"batch {i} has non-positive size {size}")
            continue
        n_inputs += n
        while n > 0:
            take = min(n, caps.max_batch)
            chunks.append(take)
            n -= take
    t = t_start_s + (caps.program_time_s if include_program else 0.0)
    for n in chunks:
        t += caps.batch_seconds(n)
    elapsed = t - t_start_s
    walk_std = 0.0
    gamma = gamma0
    if drift is not None:
        walk_std = drift.phase_walk_std * math.sqrt(max(0.0, elapsed))
        gamma = crosstalk_gamma_at(
            gamma0, drift.crosstalk_gamma_drift, drift.crosstalk_tau_s, t)
    return ExecutionPlan(
        chunks=chunks,
        n_inputs=n_inputs,
        t_start_s=t_start_s,
        t_end_s=t,
        forecast_walk_std=walk_std,
        forecast_gamma=gamma,
        includes_program=include_program,
        violations=violations,
    )
