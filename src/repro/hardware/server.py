"""Async streaming-inference server over an accelerator backend.

:class:`StreamingServer` accepts single-sample inference requests,
micro-batches whatever is waiting in its queue (up to the chip's
``max_batch``), executes one chip call per micro-batch, and fans the
detections back out to the awaiting callers.  Batching is what makes
a photonic accelerator worth serving: the per-call overhead
(``batch_overhead_s``) amortizes over the batch, so throughput scales
with occupancy (pinned by ``benchmarks/test_perf_streaming.py``).

After every micro-batch the server scores the chip against the served
target and feeds a :class:`~repro.hardware.monitor.RollingMonitor`;
when the rolling window crosses its threshold the server runs its
recalibrator (inline, or through the PR 7 job queue — see
:mod:`repro.hardware.recalibration`), reprograms the chip, and resets
the window.  This is the closed loop the paper's static noise analysis
stops short of: serve -> drift -> detect -> recalibrate -> keep
serving.

Determinism: the server is single-threaded asyncio.  For a fixed
workload driven by :meth:`serve` / :meth:`serve_sync`, every request is
enqueued before the batcher drains, so the micro-batch decomposition —
and therefore the virtual-time trajectory, the drift evolution, and
the entire report — is a pure function of (chip seed, workload,
thresholds).  Pinned byte-identical by ``tests/hardware/test_server.py``.
"""

from __future__ import annotations

import asyncio
from typing import Callable, List, Optional, Sequence

import numpy as np

from .base import AcceleratorBackend
from .monitor import RollingMonitor

__all__ = ["StreamingServer"]

_STOP = object()


class StreamingServer:
    """Micro-batching inference server with online recalibration.

    Parameters
    ----------
    chip: the :class:`AcceleratorBackend` to serve.
    target: the K x K transfer the chip is supposed to realize; used
        to score fidelity after each micro-batch.  ``None`` disables
        monitoring (plain batching server).
    monitor: trigger policy; defaults to a fresh
        :class:`RollingMonitor` when a target is given.
    recalibrate: callable ``(chip, target) -> dict`` invoked on
        trigger (e.g. :class:`~repro.hardware.recalibration.
        InlineRecalibrator`).  ``None`` records triggers without
        acting — useful to measure uncompensated drift.
    max_batch: micro-batch ceiling; clamped to the chip capability.
    """

    def __init__(
        self,
        chip: AcceleratorBackend,
        target: Optional[np.ndarray] = None,
        monitor: Optional[RollingMonitor] = None,
        recalibrate: Optional[Callable] = None,
        max_batch: Optional[int] = None,
    ):
        self.chip = chip
        caps = chip.capabilities()
        self.max_batch = (caps.max_batch if max_batch is None
                          else min(int(max_batch), caps.max_batch))
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        self.target = None if target is None else np.asarray(target)
        if monitor is None and self.target is not None:
            monitor = RollingMonitor()
        self.monitor = monitor
        self.recalibrate = recalibrate
        self._queue: Optional[asyncio.Queue] = None
        self._batcher_task: Optional[asyncio.Task] = None
        self.n_requests = 0
        self.n_batches = 0
        self.batch_sizes: List[int] = []
        self.fidelity_trace: List[float] = []
        self.recalibrations: List[dict] = []

    # -- lifecycle ------------------------------------------------------
    def start(self) -> None:
        """Start the batcher inside a running event loop."""
        if self._batcher_task is not None:
            raise RuntimeError("server already started")
        self._queue = asyncio.Queue()
        self._batcher_task = asyncio.get_running_loop().create_task(
            self._batcher())

    async def stop(self) -> None:
        """Drain outstanding requests, then stop the batcher."""
        if self._batcher_task is None:
            return
        self._queue.put_nowait(_STOP)
        await self._batcher_task
        self._batcher_task = None
        self._queue = None

    # -- request path ---------------------------------------------------
    async def submit(self, x: np.ndarray) -> np.ndarray:
        """One inference request: a (K,) input -> its (K,) detections.

        Requests queued together ride the same chip call.
        """
        if self._queue is None:
            raise RuntimeError("server not started; call start() first")
        fut = asyncio.get_running_loop().create_future()
        self._queue.put_nowait((np.asarray(x), fut))
        return await fut

    async def _batcher(self) -> None:
        stopping = False
        while not stopping:
            item = await self._queue.get()
            if item is _STOP:
                return
            pending = [item]
            while len(pending) < self.max_batch:
                try:
                    nxt = self._queue.get_nowait()
                except asyncio.QueueEmpty:
                    break
                if nxt is _STOP:
                    stopping = True
                    break
                pending.append(nxt)
            self._execute_batch(pending)

    def _execute_batch(self, pending: list) -> None:
        xs = np.stack([x for x, _ in pending])
        try:
            detections = self.chip.execute(xs)
        except Exception as exc:
            for _, fut in pending:
                if not fut.done():
                    fut.set_exception(exc)
            return
        for (_, fut), det in zip(pending, detections):
            fut.set_result(det)
        self.n_requests += len(pending)
        self.n_batches += 1
        self.batch_sizes.append(len(pending))
        self._after_batch()

    def _after_batch(self) -> None:
        if self.monitor is None or self.target is None:
            return
        score = self.chip.fidelity_to(self.target)
        self.fidelity_trace.append(float(score))
        if not self.monitor.record(score):
            return
        if self.recalibrate is None:
            self.recalibrations.append(
                {"batch_index": self.n_batches - 1, "applied": False})
            return
        result = self.recalibrate(self.chip, self.target)
        entry = dict(result)
        entry["batch_index"] = self.n_batches - 1
        entry["applied"] = True
        entry["fidelity_after"] = float(self.chip.fidelity_to(self.target))
        self.recalibrations.append(entry)
        # Scores in the window describe the pre-reprogram chip.
        self.monitor.reset()

    # -- fixed workloads ------------------------------------------------
    async def serve(self, inputs: Sequence[np.ndarray],
                    wave_size: Optional[int] = None) -> List[np.ndarray]:
        """Serve a fixed workload; returns detections in input order.

        All requests of a wave are enqueued before the batcher runs
        (single-threaded asyncio), so the micro-batch decomposition is
        deterministic: consecutive chunks of ``max_batch``.
        ``wave_size`` splits the workload into arrival waves — each
        wave completes before the next is enqueued, modelling bursty
        traffic (and bounding the micro-batch size from above).
        """
        if wave_size is not None and int(wave_size) < 1:
            raise ValueError(f"wave_size must be >= 1, got {wave_size}")
        if not len(inputs):
            return []
        owns_loop = self._batcher_task is None
        if owns_loop:
            self.start()
        try:
            results: List[np.ndarray] = []
            wave = len(inputs) if wave_size is None else int(wave_size)
            for lo in range(0, len(inputs), wave):
                chunk = inputs[lo:lo + wave]
                results.extend(await asyncio.gather(
                    *(self.submit(x) for x in chunk)))
            return results
        finally:
            if owns_loop:
                await self.stop()

    def serve_sync(self, inputs: Sequence[np.ndarray],
                   wave_size: Optional[int] = None) -> List[np.ndarray]:
        """:meth:`serve` from synchronous code (CLI, tests, benchmarks)."""
        return asyncio.run(self.serve(inputs, wave_size=wave_size))

    # -- reporting ------------------------------------------------------
    def report(self) -> dict:
        """JSON-native serving report (stats, monitor state, chip
        clock, recalibration trace) — canonical-JSON stable for
        fixed-seed workloads."""
        out = {
            "n_requests": self.n_requests,
            "n_batches": self.n_batches,
            "batch_sizes": list(self.batch_sizes),
            "max_batch": self.max_batch,
            "fidelity_trace": [float(f) for f in self.fidelity_trace],
            "recalibrations": [dict(r) for r in self.recalibrations],
            "monitor": None if self.monitor is None
            else self.monitor.snapshot(),
        }
        virtual_t = getattr(self.chip, "virtual_time_s", None)
        if virtual_t is not None:
            out["virtual_time_s"] = float(virtual_t)
        return out
