"""Hardware-abstraction layer: the accelerator backend interface.

Everything above this module (the streaming server, the CLI, the
benchmarks) talks to a photonic accelerator through
:class:`AcceleratorBackend` — a deliberately narrow contract modelled
on how real photonic test benches are driven:

``capabilities()``
    Static description of the part: mesh size, programmable phase
    range, micro-batch ceiling, and the virtual-time cost model.
``program(phases)``
    Load a phase configuration onto the mesh.  Validated against the
    capabilities *before* any state changes (a bad program must never
    half-apply).
``stream(batches)`` / ``execute(batch)``
    Drive optical inputs through the programmed mesh; detections
    accumulate in an output buffer.
``read_detections()``
    Drain the buffered photodetector readings.
``plan(batch_sizes)``
    Dry-run planning: how a workload will be chunked, how much
    virtual time it will consume, and how much calibration drift to
    expect over that window — without touching the chip.

The only concrete backend today is
:class:`repro.hardware.simulated.SimulatedChip`, whose state evolves
over virtual time (phase drift, thermal-crosstalk buildup).  A real
driver would implement the same surface against lab instruments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Sequence, Tuple

import numpy as np

__all__ = [
    "AcceleratorBackend",
    "ChipCapabilities",
    "ExecutionPlan",
    "ProgramValidationError",
]


class ProgramValidationError(ValueError):
    """A program or input batch was rejected before execution."""


@dataclass(frozen=True)
class ChipCapabilities:
    """Static description of one accelerator part.

    Attributes
    ----------
    k: mesh size (number of waveguides / detectors).
    n_blocks: number of programmable phase columns.
    phase_range: inclusive (lo, hi) heater-drive limits in radians.
        Phases are physically periodic, but crosstalk mixing is not,
        so drives are validated against the actual actuator range
        instead of being silently wrapped.
    max_batch: largest input batch one execution accepts (the
        micro-batching ceiling of the streaming server).
    program_time_s: virtual seconds one ``program()`` costs.
    batch_overhead_s: fixed virtual seconds per executed batch
        (modulator setup, readout framing).
    sample_time_s: virtual seconds per sample within a batch.
    """

    k: int
    n_blocks: int
    phase_range: Tuple[float, float] = (-2.0 * math.pi, 4.0 * math.pi)
    max_batch: int = 64
    program_time_s: float = 0.01
    batch_overhead_s: float = 0.001
    sample_time_s: float = 0.0005

    def __post_init__(self) -> None:
        if self.k < 1:
            raise ValueError(f"k must be >= 1, got {self.k}")
        if self.n_blocks < 0:
            raise ValueError(f"n_blocks must be >= 0, got {self.n_blocks}")
        lo, hi = self.phase_range
        if not lo < hi:
            raise ValueError(f"phase_range must satisfy lo < hi, got {self.phase_range}")
        if self.max_batch < 1:
            raise ValueError(f"max_batch must be >= 1, got {self.max_batch}")
        for name in ("program_time_s", "batch_overhead_s", "sample_time_s"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be >= 0")

    def batch_seconds(self, n: int) -> float:
        """Virtual-time cost of executing one ``n``-sample batch."""
        return self.batch_overhead_s + n * self.sample_time_s


@dataclass
class ExecutionPlan:
    """Dry-run description of a workload — no chip state is touched.

    ``chunks`` is the micro-batch decomposition the execution will
    use; the drift forecast quantifies how stale the calibration will
    be by the end of the window (random-walk std in radians, and the
    effective crosstalk gamma), which is what an operator consults to
    pick a recalibration cadence.
    """

    chunks: List[int]
    n_inputs: int
    t_start_s: float
    t_end_s: float
    forecast_walk_std: float = 0.0
    forecast_gamma: float = 0.0
    includes_program: bool = False
    violations: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def virtual_seconds(self) -> float:
        return self.t_end_s - self.t_start_s

    def summary(self) -> str:
        head = (
            f"plan: {self.n_inputs} input(s) in {len(self.chunks)} "
            f"micro-batch(es), {self.virtual_seconds:.3f}s virtual "
            f"({self.t_start_s:.3f}s -> {self.t_end_s:.3f}s)"
        )
        drift = (
            f"  drift forecast: walk std {self.forecast_walk_std:.4f} rad, "
            f"crosstalk gamma {self.forecast_gamma:.4f}"
        )
        lines = [head, drift]
        if self.violations:
            lines.append("  REJECTED:")
            lines.extend(f"    - {v}" for v in self.violations)
        return "\n".join(lines)


class AcceleratorBackend:
    """Abstract accelerator: program -> stream -> read detections.

    Subclasses implement the five primitives; the base class provides
    the shared convenience surface (``execute`` = stream one batch and
    drain it immediately).
    """

    # -- interface ------------------------------------------------------
    def capabilities(self) -> ChipCapabilities:
        raise NotImplementedError

    def program(self, phases: np.ndarray) -> None:
        """Validate and load a (n_blocks, K) phase configuration."""
        raise NotImplementedError

    def stream(self, batches: Iterable[np.ndarray]) -> int:
        """Execute batches in order; returns the number executed.
        Detections accumulate until :meth:`read_detections`."""
        raise NotImplementedError

    def read_detections(self) -> List[np.ndarray]:
        """Drain buffered per-batch detection arrays, oldest first."""
        raise NotImplementedError

    def plan(self, batch_sizes: Sequence[int],
             include_program: bool = False) -> ExecutionPlan:
        """Dry-run a workload: chunking, virtual-time cost, drift
        forecast.  Never mutates chip state."""
        raise NotImplementedError

    # -- conveniences ---------------------------------------------------
    def execute(self, batch: np.ndarray) -> np.ndarray:
        """Stream one batch and return its detections immediately."""
        n = self.stream([batch])
        if n != 1:
            raise RuntimeError(f"expected 1 executed batch, got {n}")
        return self.read_detections()[-1]

    def validate_program(self, phases: np.ndarray) -> np.ndarray:
        """Pre-execution program validation (shape, finiteness, phase
        range); raises :class:`ProgramValidationError` listing every
        violation.  Returns the validated float array."""
        from .validation import validate_phases

        return validate_phases(phases, self.capabilities())

    def validate_batch(self, batch: np.ndarray) -> np.ndarray:
        """Pre-execution input validation; see :func:`validate_phases`
        counterpart :func:`repro.hardware.validation.validate_batch`."""
        from .validation import validate_batch

        return validate_batch(batch, self.capabilities())
