"""Command-line interface: ``python -m repro <command>``.

Thin wrappers over the library API so every major workflow is
reachable without writing Python:

* ``info`` — registered PDKs, paper footprint windows, version;
* ``search`` — run an ADEPT search, save the topology JSON;
* ``evaluate`` — train/evaluate a saved topology (or a baseline mesh)
  on a synthetic dataset;
* ``export`` — topology JSON -> netlist JSON + ASCII schematic +
  floorplan estimate;
* ``robustness`` — phase-noise robustness sweep of a saved topology;
* ``baseline-search`` — random / evolutionary search in the same
  space (ablation);
* ``submit`` / ``status`` / ``serve`` — the concurrent design
  service (:mod:`repro.service`): enqueue jobs into a persistent
  queue rooted at a directory, inspect them, and drain them with a
  sharded multiprocess worker pool;
* ``campaign run`` / ``campaign status`` / ``campaign report`` — the
  declarative campaign engine (:mod:`repro.campaign`): execute a
  checked-in campaign config (inline or service-sharded), inspect a
  sharded campaign's queue progress, and render the artifacts of a
  finished campaign without recomputing (see ``docs/CAMPAIGNS.md``
  and ``examples/campaigns/``);
* ``chip serve`` / ``chip bench`` — the hardware-abstraction layer
  (:mod:`repro.hardware`): run a streaming-inference scenario on a
  drifting virtual chip with online recalibration, or measure the
  micro-batching throughput gain;
* ``lint`` — the project invariant checker (:mod:`repro.lint`):
  AST-based rules encoding the repo's hard-won correctness
  conventions (see ``docs/LINTS.md``); exits 0 on a clean tree, 1
  when findings remain, 2 on usage errors.

Every command accepts ``--seed`` and prints a deterministic report to
stdout; artifacts land where ``--out`` points.  Failures exit
non-zero: argparse errors exit 2, any command error prints
``error: ...`` to stderr and exits 1 (regression-tested via
subprocess in ``tests/test_cli.py``).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import Optional, Sequence

import numpy as np

from . import __version__
from .core import (
    ADEPTConfig,
    EvolutionarySearch,
    PTCTopology,
    RandomSearch,
    make_expressivity_evaluator,
    search_ptc,
)
from .experiments.common import TABLE1_WINDOWS, TABLE2_WINDOWS
from .photonics import available_pdks, get_pdk

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="ADEPT photonic tensor-core design automation (DAC 2022 reproduction)",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    p_info = sub.add_parser("info", help="show PDKs and paper footprint windows")
    p_info.set_defaults(func=cmd_info)

    p_search = sub.add_parser("search", help="run an ADEPT topology search")
    p_search.add_argument("--k", type=int, default=8, help="PTC size K")
    p_search.add_argument("--pdk", default="amf", help="foundry PDK name")
    p_search.add_argument("--f-min", type=float, required=True,
                          help="min footprint (1000 um^2, paper units)")
    p_search.add_argument("--f-max", type=float, required=True,
                          help="max footprint (1000 um^2, paper units)")
    p_search.add_argument("--epochs", type=int, default=8)
    p_search.add_argument("--n-train", type=int, default=384)
    p_search.add_argument("--seed", type=int, default=0)
    p_search.add_argument("--out", type=Path, default=Path("topology.json"))
    p_search.set_defaults(func=cmd_search)

    p_eval = sub.add_parser("evaluate", help="train + evaluate a design")
    p_eval.add_argument("design", help="topology JSON path, or 'mzi' / 'fft'")
    p_eval.add_argument("--k", type=int, default=None,
                        help="PTC size (required for mzi/fft)")
    p_eval.add_argument("--dataset", default="mnist",
                        choices=["mnist", "fmnist", "svhn", "cifar10"])
    p_eval.add_argument("--model", default="cnn2",
                        choices=["cnn2", "lenet5", "vgg8"])
    p_eval.add_argument("--epochs", type=int, default=6)
    p_eval.add_argument("--noise-std", type=float, default=0.0,
                        help="variation-aware training noise")
    p_eval.add_argument("--seed", type=int, default=0)
    p_eval.set_defaults(func=cmd_evaluate)

    p_export = sub.add_parser("export", help="netlist/floorplan/schematic export")
    p_export.add_argument("design", type=Path, help="topology JSON path")
    p_export.add_argument("--pdk", default="amf")
    p_export.add_argument("--out", type=Path, default=None,
                          help="netlist JSON output path")
    p_export.add_argument("--max-columns", type=int, default=24,
                          help="schematic truncation width")
    p_export.add_argument("--svg", type=Path, default=None,
                          help="also write an SVG floorplan here")
    p_export.set_defaults(func=cmd_export)

    p_rob = sub.add_parser("robustness", help="phase-noise robustness sweep")
    p_rob.add_argument("design", type=Path, help="topology JSON path")
    p_rob.add_argument("--sigmas", type=float, nargs="+",
                       default=[0.02, 0.04, 0.06, 0.08, 0.10])
    p_rob.add_argument("--n-trials", type=int, default=5)
    p_rob.add_argument("--seed", type=int, default=0)
    p_rob.set_defaults(func=cmd_robustness)

    p_base = sub.add_parser("baseline-search",
                            help="random / evolutionary search ablation")
    p_base.add_argument("--method", choices=["random", "evolutionary"],
                        default="random")
    p_base.add_argument("--k", type=int, default=8)
    p_base.add_argument("--pdk", default="amf")
    p_base.add_argument("--f-min", type=float, required=True,
                        help="min footprint (1000 um^2)")
    p_base.add_argument("--f-max", type=float, required=True,
                        help="max footprint (1000 um^2)")
    p_base.add_argument("--budget", type=int, default=12,
                        help="candidate evaluations")
    p_base.add_argument("--seed", type=int, default=0)
    p_base.add_argument("--out", type=Path, default=None)
    p_base.set_defaults(func=cmd_baseline_search)

    p_submit = sub.add_parser(
        "submit", help="enqueue a job in a design-service root")
    p_submit.add_argument("kind", help="job kind (see `repro status --kinds`)")
    p_submit.add_argument("--root", type=Path, required=True,
                          help="service root directory (queue + artifacts)")
    p_submit.add_argument("--params", default=None,
                          help="job params as a JSON object string")
    p_submit.add_argument("--params-file", type=Path, default=None,
                          help="job params from a JSON file")
    p_submit.add_argument("--design", type=Path, default=None,
                          help="topology JSON to use as the job's design")
    p_submit.add_argument("--wait", action="store_true",
                          help="block until done and print the result JSON")
    p_submit.add_argument("--timeout", type=float, default=3600.0,
                          help="--wait timeout in seconds")
    p_submit.set_defaults(func=cmd_submit)

    p_status = sub.add_parser(
        "status", help="inspect design-service jobs")
    p_status.add_argument("job_id", nargs="?", default=None,
                          help="job id; omit to list all jobs")
    p_status.add_argument("--root", type=Path, default=None,
                          help="service root directory")
    p_status.add_argument("--kinds", action="store_true",
                          help="list available job kinds and exit")
    p_status.add_argument("--result", action="store_true",
                          help="also print the finished job's result JSON")
    p_status.set_defaults(func=cmd_status)

    p_serve = sub.add_parser(
        "serve", help="run design-service workers against a root")
    p_serve.add_argument("--root", type=Path, required=True,
                         help="service root directory")
    p_serve.add_argument("--workers", type=int, default=2,
                         help="worker processes (0 = in-process worker)")
    p_serve.add_argument("--until-idle", action="store_true",
                         help="exit once the queue is drained (default: "
                              "keep serving)")
    p_serve.add_argument("--lease", type=float, default=30.0,
                         help="shard lease seconds (crash-recovery latency)")
    p_serve.add_argument("--max-attempts", type=int, default=3,
                         help="shard attempts before permanent failure")
    p_serve.add_argument("--timeout", type=float, default=None,
                         help="with --until-idle: max seconds to drain")
    p_serve.set_defaults(func=cmd_serve)

    p_camp = sub.add_parser(
        "campaign", help="declarative experiment campaigns")
    camp_sub = p_camp.add_subparsers(dest="campaign_command", required=True)

    p_camp_run = camp_sub.add_parser(
        "run", help="execute a campaign config (inline or sharded)")
    p_camp_run.add_argument("spec", type=Path,
                            help="campaign spec JSON "
                                 "(see examples/campaigns/)")
    p_camp_run.add_argument("--out", type=Path, default=None,
                            help="write artifacts (CSV/markdown/plot) here")
    p_camp_run.add_argument("--root", type=Path, default=None,
                            help="shard through a design-service root "
                                 "(kill-safe, resumable)")
    p_camp_run.add_argument("--workers", type=int, default=0,
                            help="worker processes with --root "
                                 "(0 = in-process worker)")
    p_camp_run.add_argument("--cache-dir", type=Path, default=None,
                            help="unitary-cache directory for inline runs")
    p_camp_run.add_argument("--timeout", type=float, default=None,
                            help="with --root: max seconds to drain")
    p_camp_run.set_defaults(func=cmd_campaign_run)

    p_camp_status = camp_sub.add_parser(
        "status", help="progress of a service-sharded campaign")
    p_camp_status.add_argument("spec", type=Path, help="campaign spec JSON")
    p_camp_status.add_argument("--root", type=Path, required=True,
                               help="design-service root directory")
    p_camp_status.set_defaults(func=cmd_campaign_status)

    p_camp_report = camp_sub.add_parser(
        "report", help="render artifacts of a finished sharded campaign")
    p_camp_report.add_argument("spec", type=Path, help="campaign spec JSON")
    p_camp_report.add_argument("--root", type=Path, required=True,
                               help="design-service root directory")
    p_camp_report.add_argument("--out", type=Path, default=None,
                               help="write artifacts here (default: print)")
    p_camp_report.set_defaults(func=cmd_campaign_report)

    p_chip = sub.add_parser(
        "chip", help="virtual-chip streaming inference (hardware layer)")
    chip_sub = p_chip.add_subparsers(dest="chip_command", required=True)

    def add_chip_args(p: argparse.ArgumentParser) -> None:
        p.add_argument("--design", type=Path, default=None,
                       help="topology JSON (default: random mesh)")
        p.add_argument("--k", type=int, default=8, help="mesh size")
        p.add_argument("--blocks", type=int, default=4,
                       help="random-mesh block count (no --design)")
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--max-batch", type=int, default=16,
                       help="chip micro-batch ceiling")
        p.add_argument("--requests", type=int, default=192,
                       help="inference requests to serve")

    p_chip_serve = chip_sub.add_parser(
        "serve", help="serve a drifting chip with online recalibration")
    add_chip_args(p_chip_serve)
    p_chip_serve.add_argument("--drift-std", type=float, default=0.02,
                              help="phase random walk, rad/sqrt(s)")
    p_chip_serve.add_argument("--gamma-drift", type=float, default=0.0,
                              help="thermal-crosstalk buildup amplitude")
    p_chip_serve.add_argument("--batch-overhead", type=float, default=0.5,
                              help="virtual seconds per chip call")
    p_chip_serve.add_argument("--sample-time", type=float, default=0.05,
                              help="virtual seconds per sample")
    p_chip_serve.add_argument("--window", type=int, default=8,
                              help="rolling fidelity window")
    p_chip_serve.add_argument("--trigger-below", type=float, default=0.985,
                              help="recalibrate when mean fidelity drops "
                                   "below this")
    p_chip_serve.add_argument("--rearm-above", type=float, default=None,
                              help="re-arm threshold (default: halfway "
                                   "between trigger and 1)")
    p_chip_serve.add_argument("--calib-steps", type=int, default=150,
                              help="adjoint steps per (re)calibration")
    p_chip_serve.add_argument("--service-root", type=Path, default=None,
                              help="route recalibration jobs through this "
                                   "design-service root")
    p_chip_serve.add_argument("--out", type=Path, default=None,
                              help="write the full serving report JSON here")
    p_chip_serve.set_defaults(func=cmd_chip_serve)

    p_chip_bench = chip_sub.add_parser(
        "bench", help="micro-batching throughput vs one-at-a-time")
    add_chip_args(p_chip_bench)
    p_chip_bench.set_defaults(func=cmd_chip_bench)

    p_lint = sub.add_parser(
        "lint", help="project invariant checks (AST static analysis)")
    p_lint.add_argument("paths", nargs="*", type=Path,
                        default=[Path("src/repro")],
                        help="files/directories to lint "
                             "(default: src/repro)")
    p_lint.add_argument("--format", choices=["text", "json"],
                        default="text", dest="format",
                        help="finding output format")
    p_lint.add_argument("--rules", default=None,
                        help="comma-separated rule ids to run "
                             "(default: all; see --list-rules)")
    p_lint.add_argument("--baseline", type=Path, nargs="?",
                        const=Path("lint-baseline.json"), default=None,
                        help="suppress findings grandfathered in this "
                             "baseline file (default path when the flag "
                             "is given bare: lint-baseline.json)")
    p_lint.add_argument("--write-baseline", type=Path, default=None,
                        help="write current findings as a baseline "
                             "and exit 0")
    p_lint.add_argument("--list-rules", action="store_true",
                        help="list registered rules and exit")
    p_lint.set_defaults(func=cmd_lint)

    return parser


# ----------------------------------------------------------------------
# commands
# ----------------------------------------------------------------------

def cmd_info(args: argparse.Namespace) -> int:
    print(f"repro {__version__} — ADEPT (DAC 2022) reproduction")
    print("\nregistered PDKs (device areas in um^2):")
    for name in available_pdks():
        pdk = get_pdk(name)
        print(f"  {pdk.name:<5} PS={pdk.ps_area:<8.0f} DC={pdk.dc_area:<8.0f} "
              f"CR={pdk.cr_area:<8.0f}")
    print("\npaper footprint windows (1000 um^2):")
    for k, windows in TABLE1_WINDOWS.items():
        pretty = ", ".join(f"[{a:.0f}, {b:.0f}]" for a, b in windows)
        print(f"  Table 1 (AMF) K={k:<3} {pretty}")
    pretty = ", ".join(f"[{a:.0f}, {b:.0f}]" for a, b in TABLE2_WINDOWS)
    print(f"  Table 2 (AIM) K=16  {pretty}")
    return 0


def cmd_search(args: argparse.Namespace) -> int:
    pdk = get_pdk(args.pdk)
    cfg = ADEPTConfig(
        k=args.k,
        pdk=pdk,
        f_min=args.f_min * 1000.0,
        f_max=args.f_max * 1000.0,
        epochs=args.epochs,
        warmup_epochs=max(1, args.epochs // 6),
        spl_epoch=max(2, (2 * args.epochs) // 3),
        n_train=args.n_train,
        n_test=max(64, args.n_train // 2),
        seed=args.seed,
    )
    print(f"searching K={args.k} on {pdk.name}, window "
          f"[{args.f_min:.0f}, {args.f_max:.0f}]k um^2, {args.epochs} epochs ...")
    result = search_ptc(cfg)
    topo = result.topology
    topo.save(args.out)
    print(topo.summary(pdk))
    print(f"saved -> {args.out}")
    return 0


def cmd_evaluate(args: argparse.Namespace) -> int:
    from .experiments.common import ExperimentScale, train_eval_mesh

    scale = ExperimentScale()
    scale.retrain_epochs = args.epochs
    scale.seed = args.seed
    if args.design in ("mzi", "fft"):
        if args.k is None:
            print("error: --k is required for baseline meshes", file=sys.stderr)
            return 2
        mesh = "mzi" if args.design == "mzi" else "butterfly"
        k = args.k
        label = args.design
    else:
        topo = PTCTopology.load(args.design)
        mesh = topo
        k = topo.k
        label = topo.name
    acc, _ = train_eval_mesh(mesh, k, scale, dataset=args.dataset,
                             model_name=args.model, noise_std=args.noise_std,
                             seed=args.seed)
    print(f"{label}: {args.model} on {args.dataset} -> {acc:.2f}% "
          f"({args.epochs} epochs, seed {args.seed})")
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    from .layout import build_netlist, place, render_topology

    topo = PTCTopology.load(args.design)
    pdk = get_pdk(args.pdk)
    netlist = build_netlist(topo)
    out = args.out or args.design.with_suffix(".netlist.json")
    netlist.save(out)
    n_ps, n_dc, n_cr = netlist.device_counts()
    print(f"{topo.summary(pdk)}")
    print(f"netlist: {len(netlist.devices)} devices "
          f"(PS={n_ps}, DC={n_dc}, CR={n_cr}), "
          f"{netlist.n_columns} columns, optical depth {netlist.optical_depth()}")
    print(place(netlist, pdk).summary())
    from .photonics.power import estimate_power

    print(estimate_power(topo, pdk).summary())
    print(f"netlist saved -> {out}")
    if args.svg is not None:
        from .layout import floorplan_svg

        args.svg.write_text(floorplan_svg(netlist, pdk, title=topo.name))
        print(f"floorplan SVG saved -> {args.svg}")
    print()
    print(render_topology(topo, max_columns=args.max_columns))
    return 0


def cmd_robustness(args: argparse.Namespace) -> int:
    from .photonics.nonideality import (
        NonidealitySpec,
        unitary_fidelity_under_noise,
    )

    topo = PTCTopology.load(args.design)
    print(f"phase-noise robustness of {topo.name!r} (K={topo.k}, "
          f"{topo.n_blocks} blocks; mean unitary fidelity, "
          f"{args.n_trials} trials)")
    print(f"  {'sigma':>6}  {'fidelity':>9}  {'std':>8}")
    for sigma in args.sigmas:
        mean, std = unitary_fidelity_under_noise(
            topo, NonidealitySpec(phase_noise_std=float(sigma)),
            n_trials=args.n_trials, rng=np.random.default_rng(args.seed))
        print(f"  {sigma:6.3f}  {mean:9.4f}  {std:8.4f}")
    return 0


def cmd_baseline_search(args: argparse.Namespace) -> int:
    pdk = get_pdk(args.pdk)
    f_min, f_max = args.f_min * 1000.0, args.f_max * 1000.0
    evaluate = make_expressivity_evaluator(steps=120, seed=args.seed)
    if args.method == "random":
        search = RandomSearch(args.k, pdk, f_min, f_max, evaluate=evaluate,
                              seed=args.seed)
        result = search.run(n_samples=args.budget)
    else:
        population = max(2, min(6, args.budget // 3))
        search = EvolutionarySearch(args.k, pdk, f_min, f_max,
                                    evaluate=evaluate, population=population,
                                    seed=args.seed)
        generations = max(1, (args.budget - population) // population)
        result = search.run(generations=generations,
                            children_per_gen=population)
    print(f"{args.method} search: {result.n_evaluated} candidates, "
          f"best score {result.score:.4f}")
    print(result.topology.summary(pdk))
    if args.out:
        result.topology.save(args.out)
        print(f"saved -> {args.out}")
    return 0


# ----------------------------------------------------------------------
# design-service commands
# ----------------------------------------------------------------------

def _load_job_params(args: argparse.Namespace) -> dict:
    import json

    if args.params is not None and args.params_file is not None:
        raise ValueError("pass --params or --params-file, not both")
    if args.params_file is not None:
        params = json.loads(args.params_file.read_text())
    elif args.params is not None:
        params = json.loads(args.params)
    else:
        params = {}
    if not isinstance(params, dict):
        raise ValueError("job params must be a JSON object")
    if args.design is not None:
        from .service.handlers import topology_param

        topo = PTCTopology.load(args.design)
        key = "topology" if args.kind == "export" else "mesh"
        params.setdefault(key, topology_param(topo))
    return params


def cmd_submit(args: argparse.Namespace) -> int:
    import json

    from .service import DesignService

    params = _load_job_params(args)
    svc = DesignService(args.root)
    try:
        job_id = svc.submit(args.kind, params)
        status = svc.status(job_id)
        print(f"submitted {args.kind} job {job_id} "
              f"({status['n_shards']} shards) -> {args.root}")
        if args.wait:
            result = svc.wait(job_id, timeout=args.timeout)
            print(json.dumps(result, indent=2, sort_keys=True))
    finally:
        svc.close()
    return 0


def _format_job_row(s: dict) -> str:
    done = s["shards"].get("done", 0)
    return (f"  {s['id']}  {s['kind']:<16} {s['status']:<8} "
            f"{done}/{s['n_shards']} shards")


def cmd_status(args: argparse.Namespace) -> int:
    import json

    from .service import DesignService, available_job_kinds, get_job_type

    if args.kinds:
        print("available job kinds:")
        for kind in available_job_kinds():
            print(f"  {kind:<16} {get_job_type(kind).description}")
        return 0
    if args.root is None:
        raise ValueError("--root is required (or use --kinds)")
    svc = DesignService(args.root)
    try:
        if args.job_id is None:
            jobs = svc.jobs()
            if not jobs:
                print(f"no jobs in {args.root}")
                return 0
            print(f"{len(jobs)} job(s) in {args.root}:")
            for s in jobs:
                print(_format_job_row(s))
            return 0
        s = svc.status(args.job_id)
        print(_format_job_row(s))
        if s["error"]:
            print(f"  error: {s['error']}")
        if args.result:
            print(json.dumps(svc.result(args.job_id), indent=2,
                             sort_keys=True))
        return 0 if s["status"] != "failed" else 1
    finally:
        svc.close()


def cmd_serve(args: argparse.Namespace) -> int:
    from .service import DesignService

    svc = DesignService(args.root)
    try:
        n_jobs = svc.queue.unfinished()
        mode = "until idle" if args.until_idle else "forever"
        print(f"serving {args.root} with {args.workers} worker(s) {mode}; "
              f"{n_jobs} unfinished job(s)")
        svc.run(
            n_workers=args.workers,
            timeout=args.timeout,
            lease_seconds=args.lease,
            max_attempts=args.max_attempts,
            until_idle=bool(args.until_idle),
        )
    finally:
        svc.close()
    if args.until_idle:
        print("queue drained")
    return 0


# ----------------------------------------------------------------------
# campaign commands
# ----------------------------------------------------------------------

def _load_campaign_spec(path: Path):
    from .campaign import CampaignSpec

    return CampaignSpec.load(path).validate()


def _campaign_job_id(spec) -> str:
    from .campaign import campaign_job_params
    from .service import JobSpec

    return JobSpec(kind="campaign", params=campaign_job_params(spec)).job_id


def cmd_campaign_run(args: argparse.Namespace) -> int:
    from .campaign import (
        aggregate,
        expand,
        report_markdown,
        run_campaign,
        write_artifacts,
    )

    spec = _load_campaign_spec(args.spec)
    n_cells = len(expand(spec))
    where = (f"service root {args.root} ({args.workers} worker(s))"
             if args.root is not None else "inline")
    print(f"campaign {spec.name} ({spec.kind}, id {spec.campaign_id}): "
          f"{n_cells} cell(s), {where}")
    run = run_campaign(spec, n_workers=args.workers, root=args.root,
                       cache_dir=args.cache_dir, timeout=args.timeout)
    print(report_markdown(aggregate(run)))
    if args.out is not None:
        paths = write_artifacts(run, args.out)
        print(f"artifacts saved -> {args.out} ({len(paths)} file(s))")
    return 0


def cmd_campaign_status(args: argparse.Namespace) -> int:
    from .service import DesignService

    spec = _load_campaign_spec(args.spec)
    job_id = _campaign_job_id(spec)
    svc = DesignService(args.root)
    try:
        try:
            s = svc.status(job_id)
        except KeyError:
            raise ValueError(
                f"campaign {spec.name} (job {job_id}) has not been "
                f"submitted to {args.root}; run `repro campaign run "
                f"{args.spec} --root {args.root}` first"
            )
    finally:
        svc.close()
    done = s["shards"].get("done", 0)
    print(f"campaign {spec.name} ({spec.kind}, id {spec.campaign_id})")
    print(f"  job {s['id']}  {s['status']:<8} {done}/{s['n_shards']} cells")
    if s["error"]:
        print(f"  error: {s['error']}")
    return 0 if s["status"] != "failed" else 1


def cmd_campaign_report(args: argparse.Namespace) -> int:
    from .campaign import (
        aggregate,
        report_markdown,
        run_from_job_result,
        write_artifacts,
    )
    from .service import DesignService

    spec = _load_campaign_spec(args.spec)
    job_id = _campaign_job_id(spec)
    svc = DesignService(args.root)
    try:
        try:
            result = svc.result(job_id)
        except KeyError:
            raise ValueError(
                f"campaign {spec.name} (job {job_id}) has not been "
                f"submitted to {args.root}"
            )
    finally:
        svc.close()
    run = run_from_job_result(spec, result)
    if args.out is not None:
        paths = write_artifacts(run, args.out)
        print(f"artifacts saved -> {args.out} ({len(paths)} file(s))")
    else:
        print(report_markdown(aggregate(run)))
    return 0


# ----------------------------------------------------------------------
# hardware-layer commands
# ----------------------------------------------------------------------

def _build_chip(args: argparse.Namespace, drift=None, **chip_kwargs):
    """Shared ``chip`` plumbing: topology -> (SimulatedChip, target).

    The target is the transfer of an ideal (drift- and error-free)
    twin at the same seed — what the chip is supposed to realize.
    """
    from .core.topology import random_topology
    from .hardware import SimulatedChip
    from .utils.rng import spawn_rng, stable_seed

    if args.design is not None:
        topo = PTCTopology.load(args.design)
    else:
        topo = random_topology(
            args.k, args.blocks, 0,
            rng=spawn_rng(stable_seed("chip-cli-topology", args.seed)))
    chip = SimulatedChip(topo, drift=drift, seed=args.seed,
                         max_batch=args.max_batch, **chip_kwargs)
    ideal = SimulatedChip(topo, seed=args.seed)
    return chip, ideal.transfer_matrix()


def _chip_inputs(args: argparse.Namespace, k: int):
    from .utils.rng import spawn_rng, stable_seed

    rng = spawn_rng(stable_seed("chip-cli-inputs", args.seed))
    return [rng.normal(size=k) for _ in range(args.requests)]


def cmd_chip_serve(args: argparse.Namespace) -> int:
    from .hardware import (
        InlineRecalibrator,
        RollingMonitor,
        ServiceRecalibrator,
        StreamingServer,
    )
    from .photonics import DriftSpec
    from .utils.serialization import canonical_json_dumps

    drift = DriftSpec(phase_walk_std=args.drift_std,
                      crosstalk_gamma_drift=args.gamma_drift)
    chip, target = _build_chip(
        args, drift=drift, batch_overhead_s=args.batch_overhead,
        sample_time_s=args.sample_time)
    if args.service_root is not None:
        from .service import DesignService

        recal = ServiceRecalibrator(DesignService(args.service_root),
                                    steps=args.calib_steps,
                                    seed=args.seed)
    else:
        recal = InlineRecalibrator(steps=args.calib_steps, seed=args.seed)
    first = recal(chip, target)
    baseline = chip.fidelity_to(target)
    print(f"calibrated: error {first['initial_error']:.4f} -> "
          f"{first['final_error']:.4f}, fidelity {baseline:.4f}")
    monitor = RollingMonitor(window=args.window,
                             trigger_below=args.trigger_below,
                             rearm_above=args.rearm_above)
    server = StreamingServer(chip, target=target, monitor=monitor,
                             recalibrate=recal, max_batch=args.max_batch)
    caps = chip.capabilities()
    server.serve_sync(_chip_inputs(args, caps.k))
    report = server.report()
    report["baseline_fidelity"] = float(baseline)
    print(f"served {report['n_requests']} requests in "
          f"{report['n_batches']} micro-batches, "
          f"{report['virtual_time_s']:.2f}s virtual time")
    n_applied = sum(1 for r in report["recalibrations"] if r["applied"])
    print(f"recalibrations: {n_applied} "
          f"(monitor triggers: {report['monitor']['n_triggers']})")
    if report["fidelity_trace"]:
        print(f"fidelity: first {report['fidelity_trace'][0]:.4f}, "
              f"min {min(report['fidelity_trace']):.4f}, "
              f"last {report['fidelity_trace'][-1]:.4f}")
    if args.out is not None:
        args.out.write_text(canonical_json_dumps(report))
        print(f"report saved -> {args.out}")
    return 0


def cmd_chip_bench(args: argparse.Namespace) -> int:
    from .hardware import StreamingServer

    if args.requests < 1:
        raise ValueError(f"--requests must be >= 1, got {args.requests}")
    results = {}
    for label, max_batch in (("one-at-a-time", 1),
                             ("micro-batched", args.max_batch)):
        chip, target = _build_chip(args)
        chip.program(chip.programmed_phases)  # count the program cost once
        server = StreamingServer(chip, max_batch=max_batch)
        server.serve_sync(_chip_inputs(args, chip.capabilities().k))
        results[label] = server
        print(f"{label:<14} max_batch={max_batch:<3} "
              f"{server.n_batches:>4} chip call(s), "
              f"{chip.virtual_time_s:.2f}s virtual")
    speedup = (results["one-at-a-time"].chip.virtual_time_s
               / results["micro-batched"].chip.virtual_time_s)
    print(f"micro-batching virtual-time speedup: {speedup:.2f}x")
    return 0


# ----------------------------------------------------------------------
# static-analysis command
# ----------------------------------------------------------------------

def cmd_lint(args: argparse.Namespace) -> int:
    import json

    from .lint import (
        apply_baseline,
        available_rules,
        get_rule,
        iter_python_files,
        lint_files,
        load_baseline,
        write_baseline,
    )

    if args.list_rules:
        print("registered lint rules:")
        for rule in available_rules():
            print(f"  {rule.id}  {rule.name:<22} {rule.description}")
        return 0

    rules = None
    if args.rules is not None:
        rules = [get_rule(rid.strip())
                 for rid in args.rules.split(",") if rid.strip()]
        if not rules:
            raise ValueError("--rules got an empty rule list")

    files = iter_python_files(args.paths)
    findings = lint_files(files, rules=rules)

    if args.write_baseline is not None:
        write_baseline(args.write_baseline, findings)
        print(f"wrote {len(findings)} finding(s) -> {args.write_baseline}")
        return 0

    grandfathered = 0
    if args.baseline is not None:
        findings, grandfathered = apply_baseline(
            findings, load_baseline(args.baseline))

    if args.format == "json":
        print(json.dumps(
            {
                "version": 1,
                "n_files": len(files),
                "n_findings": len(findings),
                "grandfathered": grandfathered,
                "findings": [f.to_dict() for f in findings],
            },
            indent=2,
            sort_keys=True,
        ))
    else:
        for f in findings:
            print(f.render())
        suffix = (f" ({grandfathered} grandfathered by baseline)"
                  if grandfathered else "")
        print(f"{len(findings)} finding(s) in {len(files)} file(s){suffix}")
    return 1 if findings else 0


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Parse and dispatch; never lets a failure escape as exit 0.

    Command errors print ``error: ...`` to stderr and return 1
    (argparse usage errors exit 2 on their own); a command returning
    ``None`` counts as success.  ``tests/test_cli.py`` pins these
    contracts via subprocess.
    """
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        rc = args.func(args)
    except KeyboardInterrupt:
        print("interrupted", file=sys.stderr)
        return 130
    except Exception as exc:
        # str(KeyError) wraps the message in quotes; unwrap for output.
        msg = exc.args[0] if isinstance(exc, KeyError) and exc.args else exc
        print(f"error: {msg}", file=sys.stderr)
        return 1
    return 0 if rc is None else int(rc)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
